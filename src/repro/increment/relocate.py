"""Rebase a cached function summary onto a new address layout.

A base :class:`~repro.symexec.state.FunctionSummary` depends only on
the function's own IR — that is what makes cross-binary reuse sound —
but it *records* position-dependent values: definition/constraint/use
sites, callsite and return addresses, ``SymRet(callsite)`` symbols,
and ``SymConst`` literals that point into the data segments (format
strings and globals; the sink layer dereferences these via
``binary.read_cstring``, so they must stay valid in the new image).

A fingerprint match guarantees the two layouts are isomorphic: every
instruction sits at the same entry-relative offset and the literal
tables align positionally.  Relocation is therefore a rigid shift
(``new_entry - old_entry``) of every site plus an exact substitution
``SymConst(old_literal) -> SymConst(new_literal)`` /
``SymRet(a) -> SymRet(a + offset)`` over every expression.

One guard: a mapped-data address can reach a summary without passing
through the literal table — split-immediate materialisation (MIPS
``lui``/``addiu``, ARM ``movw``/``movt``) composes it from constants
the canonicaliser can only token as raw values, and symbolic execution
folds loads from *read-only* data.  Such **stray** addresses are
recorded at store time together with a digest of the bytes behind
them (:func:`stray_addresses`).  Their raw values are still
fingerprint-covered (the composing constants token as ``c:<hex>``, so
a fingerprint match implies value equality), but the *content* behind
them is not — :func:`strays_compatible` re-digests the candidate
binary and refuses reuse on any mismatch, because the detect phase
dereferences these addresses (``binary.read_cstring`` on format
strings) against the image being scanned.
"""

import hashlib

from repro.symexec.state import (
    CallSiteSummary,
    Constraint,
    DefPair,
    FunctionSummary,
    VarUse,
)
from repro.symexec.value import SymConst, SymRet, substitute, walk


def _iter_exprs(summary):
    for pair in summary.def_pairs:
        yield pair.dest
        yield pair.value
    for use in summary.uses:
        yield use.var
    for constraint in summary.constraints:
        yield constraint.expr
    for callsite in summary.callsites:
        if not isinstance(callsite.target, str):
            yield callsite.target
        for arg in callsite.args:
            if arg is not None:
                yield arg
        for arg in callsite.stack_args:
            if arg is not None:
                yield arg
        for constraint in callsite.constraints:
            yield constraint.expr
    for value in summary.ret_values:
        yield value
    for _site, dest, value in summary.loop_stores:
        yield dest
        yield value
    for _reg, _site, value in summary.register_defs:
        yield value


def _stray_tag(binary, value):
    """Content witness for one stray address in one binary.

    Read-only data digests its first 64 bytes (enough to cover any
    format string or folded word the detect phase will read back);
    writable data is tagged ``w`` — its content is mutable state no
    summary may depend on, only the address classification matters.
    """
    if binary.read_ro(value, 1) is None:
        return "w"
    vaddr, data, _executable = binary.segment_for(value)
    offset = value - vaddr
    window = bytes(data[offset:offset + 64])
    return hashlib.sha256(window).hexdigest()[:16]


def stray_addresses(summary, binary, literals):
    """Mapped-address constants the literal table does not cover.

    Sorted tuple of ``(value, content_tag)`` pairs for ``SymConst``
    values that fall inside a mapped segment but were never rendered
    from the function's own IR — split-immediate and read-only-fold
    artefacts whose backing bytes must be re-verified before reuse in
    another image (:func:`strays_compatible`).
    """
    covered = set(literals)
    strays = set()
    for expr in _iter_exprs(summary):
        for node in walk(expr):
            if not isinstance(node, SymConst):
                continue
            value = node.value
            if value < 0x1000 or value in covered:
                continue
            if binary.segment_for(value) is not None:
                strays.add(value)
    return tuple(
        (value, _stray_tag(binary, value)) for value in sorted(strays)
    )


def strays_compatible(binary, strays):
    """True when every stray's backing bytes match in ``binary``."""
    for value, tag in strays:
        if binary.segment_for(value) is None:
            return False
        if _stray_tag(binary, value) != tag:
            return False
    return True


def _literal_mapping(old_literals, new_literals):
    """Positional old -> new literal map; ``None`` on any conflict."""
    if len(old_literals) != len(new_literals):
        return None
    mapping = {}
    for old, new in zip(old_literals, new_literals):
        seen = mapping.get(old)
        if seen is not None and seen != new:
            return None
        mapping[old] = new
    return mapping


def relocate_summary(summary, new_name, new_entry, old_literals,
                     new_literals):
    """A copy of ``summary`` rebased to ``new_entry``; ``None`` if unsound.

    ``old_literals``/``new_literals`` are the positionally aligned
    literal tables of the stored and the requesting fingerprint.  Stray
    addresses must be vetted by the caller (:func:`strays_compatible`)
    first; they keep their raw values through relocation — fingerprint
    equality guarantees those values are identical in both layouts.
    The identity relocation (same entry, same literals) is always
    sound and returns the summary unchanged.
    """
    offset = new_entry - summary.addr
    literal_map = _literal_mapping(old_literals, new_literals)
    if literal_map is None:
        return None
    moved_literals = {
        old: new for old, new in literal_map.items() if old != new
    }
    if offset == 0 and not moved_literals:
        if summary.name != new_name:
            summary.name = new_name
        return summary

    mapping = {
        SymConst(old): SymConst(new)
        for old, new in moved_literals.items()
    }
    if offset:
        rets = set()
        for expr in _iter_exprs(summary):
            for node in walk(expr):
                if isinstance(node, SymRet):
                    rets.add(node.callsite)
        for callsite in rets:
            mapping[SymRet(callsite)] = SymRet(callsite + offset)

    def fix(expr):
        return substitute(expr, mapping) if mapping else expr

    def site(value):
        return value + offset if value else value

    out = FunctionSummary(name=new_name, addr=new_entry)
    out.def_pairs = [
        DefPair(dest=fix(p.dest), value=fix(p.value), site=site(p.site))
        for p in summary.def_pairs
    ]
    out.uses = [
        VarUse(var=fix(u.var), site=site(u.site)) for u in summary.uses
    ]
    out.constraints = [
        Constraint(expr=fix(c.expr), taken=c.taken, site=site(c.site))
        for c in summary.constraints
    ]
    out.callsites = [
        CallSiteSummary(
            addr=site(c.addr),
            target=c.target if isinstance(c.target, str) else fix(c.target),
            args=[fix(a) if a is not None else None for a in c.args],
            return_addr=(
                c.return_addr + offset if c.return_addr else c.return_addr
            ),
            constraints=tuple(
                Constraint(expr=fix(k.expr), taken=k.taken,
                           site=site(k.site))
                for k in c.constraints
            ),
            stack_args=[
                fix(a) if a is not None else None for a in c.stack_args
            ],
        )
        for c in summary.callsites
    ]
    out.ret_values = [fix(v) for v in summary.ret_values]
    out.loop_stores = [
        (site(s), fix(dest), fix(value))
        for s, dest, value in summary.loop_stores
    ]
    out.register_defs = [
        (reg, site(s), fix(value))
        for reg, s, value in summary.register_defs
    ]
    out.paths_explored = summary.paths_explored
    out.truncated = summary.truncated
    out.deadline_hit = summary.deadline_hit
    return out
