"""Firmware-version delta reports (``dtaint delta OLD NEW``).

Matches functions across two images by **name** and compares them by
fingerprint — position-independent, so a rebuilt image where every
address shifted still reports "unchanged" for untouched code:

* ``unchanged``      — local and closure fingerprints both equal;
* ``body_changed``   — the function's own canonical IR differs;
* ``callee_changed`` — own body identical, but something in its callee
  closure changed (its summary-derived findings may still move);
* ``added`` / ``removed`` — present in only one image.

Findings are classified with an **address-free** key
``(function, kind, sink_name, source_name)`` — rebuilds shift every
address, so address-bearing keys would misreport a recompiled-but-
identical bug as fixed-plus-new:

* ``new``        — keyed finding present only in the new image;
* ``fixed``      — present only in the old image;
* ``persisting`` — present in both.

The delta document is canonical (sorted lists, no wall times, no
cache counters), so diffing an image against itself yields an empty,
byte-identical delta regardless of worker count or exploration order
— the same determinism contract the golden corpus enforces for scans.
"""

import hashlib
import json

from repro.pipeline.results import canonical_report

DELTA_FORMAT_VERSION = 1

_FINDING_KEY_FIELDS = ("function", "kind", "sink_name", "source_name")


def _finding_key(finding):
    return tuple(str(finding.get(name, "")) for name in _FINDING_KEY_FIELDS)


def _keyed_findings(findings_doc, section="vulnerabilities"):
    """key -> representative finding dict (first under canonical order)."""
    keyed = {}
    for finding in findings_doc.get(section, []) or []:
        keyed.setdefault(_finding_key(finding), finding)
    return keyed


def classify_functions(old_fps, new_fps):
    """Function-level delta taxonomy over fingerprint maps.

    Each map is ``name -> object`` with ``local`` and ``closure``
    attributes or keys (FunctionFingerprint instances and plain dicts
    both work, so baselines loaded from JSON compare directly).
    """

    def field(fp, name):
        value = getattr(fp, name, None)
        if value is None and isinstance(fp, dict):
            value = fp.get(name)
        return value

    out = {
        "unchanged": [], "body_changed": [], "callee_changed": [],
        "added": [], "removed": [],
    }
    for name in sorted(set(old_fps) | set(new_fps)):
        old, new = old_fps.get(name), new_fps.get(name)
        if old is None:
            out["added"].append(name)
        elif new is None:
            out["removed"].append(name)
        elif field(old, "local") != field(new, "local"):
            out["body_changed"].append(name)
        elif field(old, "closure") != field(new, "closure"):
            out["callee_changed"].append(name)
        else:
            out["unchanged"].append(name)
    return out


def classify_findings(old_doc, new_doc, section="vulnerabilities"):
    """Finding-level new/fixed/persisting split over canonical docs."""
    old_keyed = _keyed_findings(old_doc, section)
    new_keyed = _keyed_findings(new_doc, section)
    new_only = sorted(set(new_keyed) - set(old_keyed))
    fixed = sorted(set(old_keyed) - set(new_keyed))
    persisting = sorted(set(new_keyed) & set(old_keyed))
    return {
        "new": [new_keyed[k] for k in new_only],
        "fixed": [old_keyed[k] for k in fixed],
        "persisting": [new_keyed[k] for k in persisting],
    }


def compute_delta(old_image, new_image):
    """The canonical delta document for two scanned images.

    Each input is a dict with ``name``, ``sha256``, ``findings`` (a
    :func:`~repro.pipeline.results.canonical_report` document) and
    ``fingerprints`` (``name -> {local, closure}`` or
    FunctionFingerprint map).
    """
    functions = classify_functions(
        old_image.get("fingerprints", {}), new_image.get("fingerprints", {})
    )
    findings = classify_findings(
        old_image.get("findings", {}), new_image.get("findings", {})
    )
    paths = classify_findings(
        old_image.get("findings", {}), new_image.get("findings", {}),
        section="vulnerable_paths",
    )
    changed = (functions["body_changed"] + functions["callee_changed"]
               + functions["added"] + functions["removed"])
    return {
        "version": DELTA_FORMAT_VERSION,
        "old": {"name": old_image.get("name", ""),
                "sha256": old_image.get("sha256", "")},
        "new": {"name": new_image.get("name", ""),
                "sha256": new_image.get("sha256", "")},
        "functions": functions,
        "function_counts": {
            kind: len(names) for kind, names in functions.items()
        },
        "changed_closure": sorted(changed),
        "findings": findings,
        "counts": {
            "new": len(findings["new"]),
            "fixed": len(findings["fixed"]),
            "persisting": len(findings["persisting"]),
            "new_paths": len(paths["new"]),
            "fixed_paths": len(paths["fixed"]),
            "persisting_paths": len(paths["persisting"]),
        },
    }


def delta_fingerprint(delta_doc):
    """SHA-256 of the canonical delta bytes (byte-identity checks)."""
    blob = json.dumps(
        delta_doc, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def render_delta(delta_doc):
    """Human-readable delta summary."""
    counts = delta_doc["counts"]
    fn_counts = delta_doc["function_counts"]
    lines = [
        "DTaint delta: %s -> %s" % (
            delta_doc["old"]["name"] or delta_doc["old"]["sha256"][:12],
            delta_doc["new"]["name"] or delta_doc["new"]["sha256"][:12],
        ),
        "  functions: %d unchanged, %d body changed, %d callee-closure "
        "changed, %d added, %d removed" % (
            fn_counts["unchanged"], fn_counts["body_changed"],
            fn_counts["callee_changed"], fn_counts["added"],
            fn_counts["removed"],
        ),
        "  vulnerabilities: %d new, %d fixed, %d persisting" % (
            counts["new"], counts["fixed"], counts["persisting"],
        ),
        "  vulnerable paths: %d new, %d fixed, %d persisting" % (
            counts["new_paths"], counts["fixed_paths"],
            counts["persisting_paths"],
        ),
    ]
    for label in ("new", "fixed"):
        for finding in delta_doc["findings"][label]:
            lines.append("  [%s] %s: %s <- %s in %s" % (
                label, finding.get("kind", ""), finding.get("sink_name", ""),
                finding.get("source_name", ""), finding.get("function", ""),
            ))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# End-to-end: scan two ELFs and diff them.


def scan_image(path, config=None, cache_dir=None, member=""):
    """Scan one binary incrementally; returns the delta-ready dict.

    ``path`` may be a bare ELF or a packed firmware image — anything
    without an ELF magic goes through the recursive extractor, and
    ``member`` selects which embedded binary to scan (default: the
    preferred network-facing target), so a delta can compare two
    *image* releases directly.
    """
    from repro.core import DTaint, DTaintConfig
    from repro.increment.reuse import open_incremental_cache
    from repro.loader.binary import load_elf
    from repro.pipeline.cache import binary_sha256

    with open(path, "rb") as handle:
        data = handle.read()
    name = path
    if data[:4] != b"\x7fELF" or member:
        from repro.pipeline.scheduler import extract_member

        display, data = extract_member(data, member, name=path)
        name = "%s!%s" % (path, display)
    sha = binary_sha256(data)
    binary = load_elf(data, name=name)
    config = config or DTaintConfig()
    cache = (
        open_incremental_cache(cache_dir, sha, config)
        if cache_dir else None
    )
    detector = DTaint(binary, config=config, name=name, summary_cache=cache)
    report = detector.run()
    if cache is not None:
        cache.flush()
        fingerprints = {
            name: {"local": fp.local, "closure": fp.closure}
            for name, fp in cache.fingerprints.items()
        }
        cache_stats = cache.stats
    else:
        from repro.increment.fingerprint import fingerprint_functions

        fingerprints = {
            name: {"local": fp.local, "closure": fp.closure}
            for name, fp in fingerprint_functions(
                binary, detector.functions, detector.call_graph
            ).items()
        }
        cache_stats = {}
    return {
        "name": name,
        "sha256": sha,
        "findings": canonical_report(report.to_dict()),
        "fingerprints": fingerprints,
        "cache": cache_stats,
    }


def run_delta(old_path, new_path, config=None, cache_dir=None):
    """Scan both images and return (delta_doc, old_image, new_image)."""
    old_image = scan_image(old_path, config=config, cache_dir=cache_dir)
    new_image = scan_image(new_path, config=config, cache_dir=cache_dir)
    return compute_delta(old_image, new_image), old_image, new_image
