"""Incremental fleet analysis: dedup by content, re-analyse by delta.

DTaint's fleet workload (6,529 crawled images) is massively redundant
— the same binaries recur across products and firmware versions — yet
a per-binary cache re-keys everything on a one-byte rebuild.  This
package recognises redundancy across images:

* :mod:`repro.increment.fingerprint` — position-independent canonical
  IR fingerprints and Merkle-style callee-closure hashes;
* :mod:`repro.increment.index` — the content-addressed fleet store
  (closure fingerprint -> summary, image fingerprint -> findings);
* :mod:`repro.increment.relocate` — rebase a cached summary onto a
  new address layout;
* :mod:`repro.increment.reuse` — the two-level summary cache the
  detector binds to (binary bundle in front of the fleet index);
* :mod:`repro.increment.delta` — firmware-version delta reports
  (``dtaint delta``): function and finding classification.
"""

from repro.increment.delta import (
    classify_findings,
    classify_functions,
    compute_delta,
    delta_fingerprint,
    render_delta,
    run_delta,
    scan_image,
)
from repro.increment.fingerprint import (
    FunctionFingerprint,
    fingerprint_functions,
    image_fingerprint,
)
from repro.increment.index import FleetIndex
from repro.increment.relocate import (
    relocate_summary,
    stray_addresses,
    strays_compatible,
)
from repro.increment.reuse import (
    IncrementalSummaryCache,
    clear_binary_bundles,
    open_incremental_cache,
)

__all__ = [
    "FunctionFingerprint", "fingerprint_functions", "image_fingerprint",
    "FleetIndex", "relocate_summary", "stray_addresses",
    "strays_compatible",
    "IncrementalSummaryCache", "open_incremental_cache",
    "clear_binary_bundles",
    "classify_functions", "classify_findings", "compute_delta",
    "delta_fingerprint", "render_delta", "run_delta", "scan_image",
]
