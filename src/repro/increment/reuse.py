"""The incremental summary cache: binary-scoped bundle + fleet index.

:class:`IncrementalSummaryCache` presents the exact ``get(addr)`` /
``put(addr, summary)`` / ``hits`` / ``misses`` surface the detector
already binds to, so ``repro.core`` stays free of pipeline concepts.
The one addition is ``bind_functions`` — a duck-typed hook the
detector calls right after call-graph construction — which computes
the position-independent fingerprints this cache keys the fleet layer
by (timed under the ``increment`` profiler phase).

Lookup order: the per-binary bundle first (one dict probe), then the
fleet index by closure fingerprint, rebasing the stored summary onto
this binary's layout on a hit and back-filling the bundle so the next
run of the same binary never pays the relocation again.
"""

import os

from repro import profiling
from repro.increment.fingerprint import (
    fingerprint_functions,
    image_fingerprint,
)
from repro.increment.index import FleetIndex
from repro.increment.relocate import (
    relocate_summary,
    stray_addresses,
    strays_compatible,
)
from repro.pipeline.cache import SummaryCache, summary_fingerprint


class IncrementalSummaryCache:
    """Two-level summary store: binary bundle in front of fleet index."""

    def __init__(self, bound, index):
        self.bound = bound
        self.index = index
        self.binary = None
        self.fingerprints = {}          # name -> FunctionFingerprint
        self._by_addr = {}              # entry addr -> FunctionFingerprint
        self._seeded = False
        self.hits = 0
        self.misses = 0

    # -- detector hooks ----------------------------------------------------

    def seed_fingerprints(self, binary, fingerprints):
        """Adopt fingerprints computed elsewhere instead of rebinding.

        Shard workers recover only their subset of the CFG; closure
        digests recomputed over such a partial call graph would be
        wrong (cross-shard callee edges missing).  The plan task
        computes them once on the full graph and ships them, and this
        seeding makes the subsequent ``bind_functions`` hook a no-op.
        """
        self.binary = binary
        self.fingerprints = dict(fingerprints)
        self._by_addr = {fp.addr: fp for fp in self.fingerprints.values()}
        self._seeded = True

    def bind_functions(self, binary, functions, call_graph):
        """Fingerprint the recovered functions (detector build_cfg hook)."""
        if self._seeded:
            return
        with profiling.PROFILER.phase("increment"):
            self.binary = binary
            self.fingerprints = fingerprint_functions(
                binary, functions, call_graph
            )
            self._by_addr = {
                fp.addr: fp for fp in self.fingerprints.values()
            }
            profiling.PROFILER.count(
                "fingerprinted_functions", len(self.fingerprints)
            )

    def get(self, addr):
        summary = self.bound.get(addr)
        if summary is not None:
            self.hits += 1
            return summary
        fingerprint = self._by_addr.get(addr)
        if fingerprint is None:
            self.misses += 1
            return None
        with profiling.PROFILER.phase("increment"):
            hit = self.index.get_summary(fingerprint.closure)
            summary = None
            if hit is not None:
                stored, old_literals, strays = hit
                if strays_compatible(self.binary, strays):
                    summary = relocate_summary(
                        stored, fingerprint.name, addr,
                        old_literals, fingerprint.literals,
                    )
        if summary is None:
            self.misses += 1
            return None
        self.hits += 1
        # Back-fill the binary-scoped bundle: future runs of this
        # exact binary hit on the first probe, relocation-free.
        self.bound.put(addr, summary)
        return summary

    def put(self, addr, summary):
        self.bound.put(addr, summary)
        fingerprint = self._by_addr.get(addr)
        if fingerprint is None or self.binary is None:
            return
        with profiling.PROFILER.phase("increment"):
            strays = stray_addresses(
                summary, self.binary, fingerprint.literals
            )
            self.index.put_summary(
                fingerprint.closure, summary, fingerprint.literals,
                strays=strays,
            )

    def flush(self, include_bundle=True):
        """Persist staged writes.

        Shard workers flush only their fleet-index records (content
        addressed, first writer wins — safe concurrently); the
        per-binary bundle is whole-file-replace and is flushed exactly
        once, by the merge task (``include_bundle=False`` here).
        """
        if include_bundle:
            self.bound.flush()
        self.index.flush()

    # -- whole-image findings reuse ----------------------------------------

    def image_fingerprint(self, report_fp):
        """Content address of this image's analysis identity, or ``None``."""
        if not self.fingerprints or self.binary is None or not report_fp:
            return None
        with profiling.PROFILER.phase("increment"):
            return image_fingerprint(
                self.fingerprints, self.binary, report_fp
            )

    def lookup_image_report(self, report_fp):
        """A relocated cached findings document, or ``None``."""
        image_fp = self.image_fingerprint(report_fp)
        if image_fp is None:
            return None
        hit = self.index.get_image_report(image_fp, report_fp)
        if hit is None:
            return None
        report_dict, entries = hit
        new_entries = {
            name: fp.addr for name, fp in self.fingerprints.items()
        }
        return relocate_report(report_dict, entries, new_entries)

    def store_image_report(self, report_fp, report_dict):
        image_fp = self.image_fingerprint(report_fp)
        if image_fp is None:
            return
        entries = {
            name: fp.addr for name, fp in self.fingerprints.items()
        }
        self.index.put_image_report(
            image_fp, report_fp, report_dict, entries
        )

    # -- accounting --------------------------------------------------------

    @property
    def corrupt(self):
        return self.bound.corrupt + self.index.corrupt

    @property
    def stats(self):
        lookups = self.hits + self.misses
        stats = {
            "summary_hits": self.hits,
            "summary_misses": self.misses,
            "cache_corrupt": self.corrupt,
            "reuse_ratio": round(self.hits / lookups, 4) if lookups else 0.0,
        }
        stats.update(self.index.stats)
        stats["cache_corrupt"] = self.corrupt
        return stats

    def closure_fingerprints(self):
        """name -> {local, closure} digests (shipped in fleet image
        documents; the shape :func:`repro.increment.delta.classify_functions`
        compares directly)."""
        return {
            name: {"local": fp.local, "closure": fp.closure}
            for name, fp in self.fingerprints.items()
        }


_ADDR_FIELDS = ("sink_addr", "source_addr")


def relocate_report(report_dict, old_entries, new_entries):
    """Shift a cached findings document onto a new layout, or ``None``.

    Sound only when every matched function moved by the same offset
    (findings carry cross-function addresses — a forwarded sink's
    source can live in a different function — so per-function deltas
    cannot be applied field-by-field).  The common cases are covered:
    the identical binary (offset 0) and a rigidly rebased one.
    """
    deltas = set()
    for name, old_addr in old_entries.items():
        new_addr = new_entries.get(name)
        if new_addr is None:
            return None
        deltas.add(new_addr - old_addr)
    if len(deltas) > 1:
        return None
    offset = deltas.pop() if deltas else 0
    if offset == 0:
        return report_dict
    import copy

    shifted = copy.deepcopy(report_dict)
    for section in ("vulnerable_paths", "vulnerabilities",
                    "sanitized_paths"):
        for finding in shifted.get(section, []) or []:
            for fld in _ADDR_FIELDS:
                if isinstance(finding.get(fld), int) and finding[fld]:
                    finding[fld] += offset
    for degraded in shifted.get("degraded_functions", []) or []:
        if isinstance(degraded.get("addr"), int) and degraded["addr"]:
            degraded["addr"] += offset
    return shifted


def open_incremental_cache(cache_dir, sha, config):
    """The standard two-level cache for one binary under ``cache_dir``."""
    bound = SummaryCache(cache_dir).for_binary(sha, config)
    index = FleetIndex(cache_dir, summary_fingerprint(config))
    return IncrementalSummaryCache(bound, index)


def clear_binary_bundles(cache_dir):
    """Delete the per-binary summary bundles, keeping the fleet index.

    Bench/test helper: proves the fleet layer alone can serve a warm
    re-scan (the binary-scoped fast path is a strict optimisation).
    """
    root = os.path.join(cache_dir, "summaries")
    removed = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            os.unlink(os.path.join(dirpath, filename))
            removed += 1
    return removed
