"""The fleet dedup index: content-addressed cross-binary stores.

Layered *in front of* the per-binary caches in
:mod:`repro.pipeline.cache`, this index keys artefacts by what the
code **is** rather than where it was found:

* ``<cache>/fleet/sum/<xx>/<closure>-<cfgfp>.pkl`` — one function
  summary per (closure fingerprint, summary-config fingerprint); any
  image containing an isomorphic function with an unchanged callee
  closure can rebase and reuse it;
* ``<cache>/fleet/img/<xx>/<imagefp>-<reportfp>.json`` — one whole
  findings document per (image fingerprint, report-config
  fingerprint); reused when a rebuilt image has an identical function
  closure set and the layout shifted rigidly.

Records are self-describing (``version`` = ``CACHE_FORMAT_VERSION``);
stale or undecodable records read as misses and are quarantined the
same way the per-binary bundles are.  Writes are atomic and
content-addressed, so racing fleet workers can only ever write the
same bytes to the same key.
"""

import json
import os
import pickle

from repro.core.interproc import deserialize_summary, serialize_summary
from repro.pipeline.cache import (
    CACHE_FORMAT_VERSION,
    _atomic_write,
    _quarantine,
)


class FleetIndex:
    """On-disk content-addressed store for summaries + findings."""

    def __init__(self, root, config_fp):
        self.root = os.path.join(root, "fleet")
        self.config_fp = config_fp
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stored = 0
        self._pending = {}    # path -> serialized record bytes
        # Read-only record segment (closure -> raw record bytes),
        # attached from a scheduler-published shared-memory block so
        # a shard fan-out probes one in-memory dict instead of every
        # worker re-reading the same record files.
        self._segment = {}

    # -- paths -------------------------------------------------------------

    def _summary_path(self, closure):
        name = "%s-%s.pkl" % (closure, self.config_fp)
        return os.path.join(self.root, "sum", closure[:2], name)

    def _image_path(self, image_fp, report_fp):
        name = "%s-%s.json" % (image_fp, report_fp)
        return os.path.join(self.root, "img", image_fp[:2], name)

    # -- summaries ---------------------------------------------------------

    def attach_segment(self, records):
        """Overlay a ``{closure: record bytes}`` read-only segment."""
        if records:
            self._segment.update(records)

    def collect_records(self, closures):
        """Raw record bytes for every present closure (for a segment)."""
        records = {}
        for closure in closures:
            path = self._summary_path(closure)
            data = self._pending.get(path)
            if data is None:
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue
            records[closure] = data
        return records

    def get_summary(self, closure):
        """(summary, literals, strays) for a closure key, or ``None``."""
        path = self._summary_path(closure)
        record = self._pending.get(path)
        if record is None:
            segment = self._segment.get(closure)
            if segment is not None:
                try:
                    record = pickle.loads(segment)
                except Exception:
                    record = None    # bad segment: fall through to disk
        else:
            record = pickle.loads(record)
        if record is None:
            try:
                with open(path, "rb") as handle:
                    record = pickle.load(handle)
            except FileNotFoundError:
                self.misses += 1
                return None
            except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                    AttributeError, ImportError):
                self.corrupt += 1
                _quarantine(path)
                self.misses += 1
                return None
        if (not isinstance(record, dict)
                or record.get("version") != CACHE_FORMAT_VERSION):
            self.corrupt += 1
            _quarantine(path)
            self.misses += 1
            return None
        summary = deserialize_summary(record.get("blob"))
        if summary is None:
            self.corrupt += 1
            _quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return (summary, tuple(record.get("literals", ())),
                tuple(record.get("strays", ())))

    def put_summary(self, closure, summary, literals, strays=()):
        """Stage one summary for the closure key (first writer wins)."""
        path = self._summary_path(closure)
        if path in self._pending or os.path.exists(path):
            return
        record = {
            "version": CACHE_FORMAT_VERSION,
            "name": summary.name,
            "addr": summary.addr,
            "blob": serialize_summary(summary),
            "literals": tuple(literals),
            "strays": tuple(strays),
        }
        self._pending[path] = pickle.dumps(record, protocol=4)
        self.stored += 1

    # -- whole-image findings ----------------------------------------------

    def get_image_report(self, image_fp, report_fp):
        """(report_dict, entries {name: old_addr}) or ``None``."""
        if not image_fp or not report_fp:
            return None
        path = self._image_path(image_fp, report_fp)
        try:
            with open(path, "r") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            _quarantine(path)
            return None
        if (not isinstance(record, dict)
                or record.get("version") != CACHE_FORMAT_VERSION):
            self.corrupt += 1
            _quarantine(path)
            return None
        return record.get("report"), record.get("entries", {})

    def put_image_report(self, image_fp, report_fp, report_dict, entries):
        if not image_fp or not report_fp:
            return
        path = self._image_path(image_fp, report_fp)
        if os.path.exists(path):
            return
        record = {
            "version": CACHE_FORMAT_VERSION,
            "report": report_dict,
            "entries": entries,
        }
        _atomic_write(
            path, json.dumps(record, sort_keys=True).encode("utf-8")
        )

    # -- lifecycle ---------------------------------------------------------

    def flush(self):
        """Persist staged summaries; racing writers write equal bytes."""
        for path, data in self._pending.items():
            if not os.path.exists(path):
                _atomic_write(path, data)
        self._pending.clear()

    @property
    def stats(self):
        return {
            "fleet_hits": self.hits,
            "fleet_misses": self.misses,
            "fleet_stored": self.stored,
            "cache_corrupt": self.corrupt,
        }


def pack_segment(records):
    """Serialise a ``{closure: record bytes}`` map for shared memory.

    The scheduler publishes the packed bytes once per sharded plan;
    every shard worker attaches and overlays it via
    :meth:`FleetIndex.attach_segment`, so a fan-out of N workers costs
    one set of record reads instead of N.
    """
    return pickle.dumps(dict(records), protocol=4)


def load_segment(buf):
    """Inverse of :func:`pack_segment` (accepts any bytes-like)."""
    return pickle.loads(bytes(buf))
