"""Position-independent function fingerprints (the dedup currency).

A fleet of firmware images repeats itself: the same libc, the same
busybox, the same vendor CGI handlers recur across products and
versions, relinked at different addresses with shuffled literal pools.
The per-binary cache key ``(binary-sha256, function-addr)`` cannot see
that redundancy — one flipped byte anywhere re-keys every function.

This module canonicalises a function's lifted IR into a form that is
invariant under relocation and hashes it:

* **addresses** — instruction marks, branch targets and in-function
  references become entry-relative offsets; direct call/branch targets
  that resolve to a known function become ``f:<name>`` tokens; block
  successors become block indices;
* **literal pools** — a constant that points into a mapped data
  segment is replaced by a *content* token (``g:<symbol>`` for a named
  global, ``d:<sha of the bytes>`` for read-only data, ``w:?`` for
  anonymous writable data) and its raw value is appended to an ordered
  ``literals`` table.  Two isomorphic functions therefore hash equal
  and their literal tables align positionally — exactly the mapping
  :mod:`repro.increment.relocate` needs to rebase a cached summary;
* **temporaries** — renumbered densely in first-use order per block.

The **local** fingerprint hashes only the function's own canonical
body.  The **closure** fingerprint combines it Merkle-style with the
closure fingerprints of its resolved callees (SCCs collapsed so
recursion hashes as a unit), so it changes exactly when the function
*or anything it can reach* changes — the condition under which a
bottom-up summary (and everything derived from it) is reusable across
addresses, binaries, and images.
"""

import hashlib
from dataclasses import dataclass

import networkx as nx

from repro.ir.expr import ITE, Binop, Const, Get, Load, RdTmp, Unop
from repro.ir.stmt import Exit, IMark, Put, Store, WrTmp

# Constants below this value are never treated as addresses; embedded
# images do not map the zero page and immediates cluster small.
_MIN_ADDR = 0x1000


@dataclass(frozen=True)
class FunctionFingerprint:
    """One function's identity in the fleet dedup index."""

    name: str
    addr: int
    local: str        # hex digest of the canonical body
    closure: str      # Merkle digest over the callee closure
    literals: tuple   # data addresses, in canonical rendering order

    @property
    def key(self):
        return self.closure


def _digest(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


class _Canonicalizer:
    """Renders one function's IR as relocation-invariant tokens."""

    def __init__(self, binary, function, func_by_addr, data_syms):
        self.binary = binary
        self.function = function
        self.entry = function.addr
        self.func_by_addr = func_by_addr
        self.data_syms = data_syms
        self.literals = []
        self._block_index = {
            addr: index
            for index, addr in enumerate(sorted(function.blocks))
        }
        self._tmp_map = {}

    # -- constants ---------------------------------------------------------

    def _const_token(self, value):
        name = self.func_by_addr.get(value)
        if name is not None:
            return "f:%s" % name
        if self.function.contains(value):
            return "l:%d" % (value - self.entry)
        if value >= _MIN_ADDR and self.binary.segment_for(value) is not None:
            self.literals.append(value)
            symbol = self.data_syms.get(value)
            if symbol is not None:
                return "g:%s" % symbol
            if self.binary.read_ro(value, 1) is not None:
                content = self.binary.read_cstring(value) or b""
                return "d:%s" % hashlib.sha256(
                    content[:64]
                ).hexdigest()[:12]
            # Anonymous writable data: the address is an opaque cell
            # the summary only ever dereferences symbolically, so the
            # token carries no content (content is mutable anyway).
            return "w:?"
        return "c:%x" % value

    # -- expressions -------------------------------------------------------

    def _tmp(self, index):
        canon = self._tmp_map.get(index)
        if canon is None:
            canon = self._tmp_map[index] = len(self._tmp_map)
        return canon

    def _expr(self, expr):
        if isinstance(expr, Const):
            return "%s#%d" % (self._const_token(expr.value), expr.size)
        if isinstance(expr, RdTmp):
            return "t%d" % self._tmp(expr.tmp)
        if isinstance(expr, Get):
            return "r:%s" % expr.reg
        if isinstance(expr, Load):
            return "LD%d%s(%s)" % (
                expr.size, "s" if expr.signed else "",
                self._expr(expr.addr),
            )
        if isinstance(expr, Binop):
            return "%s(%s,%s)" % (
                expr.op, self._expr(expr.left), self._expr(expr.right)
            )
        if isinstance(expr, Unop):
            return "%s(%s)" % (expr.op, self._expr(expr.arg))
        if isinstance(expr, ITE):
            return "ITE(%s,%s,%s)" % (
                self._expr(expr.cond), self._expr(expr.iftrue),
                self._expr(expr.iffalse),
            )
        if expr is None:
            return "-"
        return "?:%r" % (expr,)

    def _target(self, addr):
        index = self._block_index.get(addr)
        if index is not None:
            return "B%d" % index
        return self._const_token(addr)

    # -- statements --------------------------------------------------------

    def render(self):
        """The canonical token list + the ordered literal table."""
        tokens = []
        for addr in sorted(self.function.blocks):
            block = self.function.blocks[addr]
            self._tmp_map = {}
            tokens.append("B%d" % self._block_index[addr])
            irsb = block.irsb
            if irsb is None:
                continue
            for stmt in irsb.stmts:
                if isinstance(stmt, IMark):
                    tokens.append("I%d" % (stmt.addr - self.entry))
                elif isinstance(stmt, WrTmp):
                    tokens.append(
                        "t%d=%s" % (self._tmp(stmt.tmp),
                                    self._expr(stmt.expr))
                    )
                elif isinstance(stmt, Put):
                    tokens.append(
                        "P:%s=%s" % (stmt.reg, self._expr(stmt.expr))
                    )
                elif isinstance(stmt, Store):
                    tokens.append(
                        "S%d:%s=%s" % (stmt.size, self._expr(stmt.addr),
                                       self._expr(stmt.data))
                    )
                elif isinstance(stmt, Exit):
                    tokens.append(
                        "X:%s->%s:%s" % (self._expr(stmt.guard),
                                         self._target(stmt.target),
                                         stmt.jumpkind)
                    )
                else:
                    tokens.append("?:%r" % (stmt,))
            next_token = (
                self._target(irsb.next_expr.value)
                if isinstance(irsb.next_expr, Const)
                else self._expr(irsb.next_expr)
            )
            tokens.append("N:%s:%s" % (next_token, irsb.jumpkind))
            if irsb.return_addr is not None:
                tokens.append("R%d" % (irsb.return_addr - self.entry))
        return tokens, self.literals


def canonical_tokens(binary, function, func_by_addr=None, data_syms=None):
    """Expose the token stream (tests and debugging)."""
    if func_by_addr is None:
        func_by_addr = {
            s.addr: s.name for s in binary.functions.values()
        }
    if data_syms is None:
        data_syms = {
            addr: name for name, addr in binary.data_symbols.items()
        }
    return _Canonicalizer(binary, function, func_by_addr, data_syms).render()


def fingerprint_functions(binary, functions, call_graph):
    """Fingerprint every analysed function; name -> FunctionFingerprint.

    ``functions`` is the detector's recovered-function map (imports
    included; they are skipped), ``call_graph`` the direct-edge call
    graph built from it.  Indirect edges resolved later by structure
    similarity are deliberately excluded: base summaries are computed
    before resolution, so the closure over *direct* edges is the exact
    invalidation condition for the cached artefact.
    """
    func_by_addr = {}
    for symbol in binary.functions.values():
        func_by_addr[symbol.addr] = symbol.name
    for function in functions.values():
        func_by_addr.setdefault(function.addr, function.name)
    data_syms = {addr: name for name, addr in binary.data_symbols.items()}

    locals_ = {}
    literals = {}
    for name, function in functions.items():
        if function.is_import or not function.blocks:
            continue
        tokens, lits = _Canonicalizer(
            binary, function, func_by_addr, data_syms
        ).render()
        locals_[name] = _digest("\n".join(tokens))
        literals[name] = tuple(lits)

    # Merkle closure over the direct call graph.  Import callees
    # already appear as ``f:<name>`` tokens in the caller's local hash
    # (their behaviour is the name-keyed libc model), so the closure
    # graph spans analysed functions only.
    graph = nx.DiGraph()
    graph.add_nodes_from(locals_)
    for name in locals_:
        for callee in call_graph.callees(name):
            if callee in locals_:
                graph.add_edge(name, callee)
    condensed = nx.condensation(graph)
    scc_closure = {}
    for scc_id in reversed(list(nx.topological_sort(condensed))):
        members = condensed.nodes[scc_id]["members"]
        member_part = "|".join(sorted(locals_[m] for m in members))
        callee_part = "|".join(sorted(
            scc_closure[s] for s in condensed.successors(scc_id)
        ))
        scc_closure[scc_id] = _digest(member_part + "#" + callee_part)
    scc_of = condensed.graph["mapping"]

    out = {}
    for name, local in locals_.items():
        closure = _digest(local + "@" + scc_closure[scc_of[name]])
        out[name] = FunctionFingerprint(
            name=name,
            addr=functions[name].addr,
            local=local,
            closure=closure,
            literals=literals[name],
        )
    return out


def address_taken_sequence(binary):
    """Function names stored in data segments, in segment/word order.

    Indirect-call resolution reads function addresses out of writable
    data (dispatch slots), so two images that share every function
    closure can still *detect* differently if a slot points at a
    different handler.  This sequence is position-independent (names,
    not addresses) and joins the image fingerprint to keep the
    findings store sound.
    """
    entries = {
        s.addr: s.name for s in binary.functions.values() if not s.is_import
    }
    sequence = []
    for vaddr, data, executable in binary.segments:
        if executable:
            continue
        big = binary.arch.is_big_endian
        for offset in range(0, len(data) - 3, 4):
            word = int.from_bytes(
                data[offset:offset + 4], "big" if big else "little"
            )
            name = entries.get(word)
            if name is not None:
                sequence.append(name)
    return tuple(sequence)


def image_fingerprint(fingerprints, binary, config_fp):
    """Content address of a whole image's analysis-relevant identity.

    Hashes the sorted (function, closure) pairs, the address-taken
    sequence, and the report-level config fingerprint.  Two binaries
    with equal image fingerprints produce the same findings modulo a
    rigid address shift — the reuse condition for the fleet findings
    store.
    """
    rows = [
        "%s=%s" % (name, fp.closure)
        for name, fp in sorted(fingerprints.items())
    ]
    rows.append("data:" + ",".join(address_taken_sequence(binary)))
    rows.append("cfg:%s" % (config_fp or ""))
    return _digest("\n".join(rows))
