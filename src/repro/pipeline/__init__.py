"""Fleet-scale orchestration over the DTaint pipeline.

The paper evaluates DTaint one image at a time; its workload is a
6,529-image corpus.  This package closes that gap:

* :mod:`repro.pipeline.scheduler` — a multiprocessing scheduler with
  per-job timeout, bounded retry, and crash quarantine;
* :mod:`repro.pipeline.cache` — content-addressed stores for
  per-function summaries and whole reports, keyed by
  ``(binary-sha256, function-addr, config-fingerprint)``;
* :mod:`repro.pipeline.telemetry` — structured JSONL run events and
  the end-of-run summary table;
* :mod:`repro.pipeline.results` — canonical per-image findings and
  the fleet-level rollup;
* :mod:`repro.pipeline.faultinject` — the deterministic fault-injection
  harness behind the chaos suite and ``--inject``.
"""

from repro.pipeline.cache import (
    ReportCache,
    SummaryCache,
    binary_sha256,
    collect_garbage,
    report_fingerprint,
    summary_fingerprint,
)
from repro.pipeline.faultinject import (
    FaultInjector,
    FaultSpec,
    injected,
    pick_target,
)
from repro.pipeline.results import (
    ResultsStore,
    canonical_report,
    findings_fingerprint,
    image_document,
    rollup_document,
)
from repro.pipeline.scheduler import (
    FleetJob,
    FleetScheduler,
    JobResult,
    execute_job,
)
from repro.pipeline.telemetry import (
    Telemetry,
    read_events,
    render_fleet_summary,
)
from repro.pipeline.workerpool import PoolWorker, WorkerPool

__all__ = [
    "FleetJob", "FleetScheduler", "JobResult", "execute_job",
    "WorkerPool", "PoolWorker",
    "SummaryCache", "ReportCache", "binary_sha256",
    "summary_fingerprint", "report_fingerprint", "collect_garbage",
    "Telemetry", "read_events", "render_fleet_summary",
    "ResultsStore", "canonical_report", "findings_fingerprint",
    "image_document", "rollup_document",
    "FaultInjector", "FaultSpec", "injected", "pick_target",
]
