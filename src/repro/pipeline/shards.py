"""Intra-image shard scheduling: split one hot image across the pool.

The fleet scheduler's unit of work used to be a whole image, so one
hot binary (hikvision in ``BENCH_hotpath.json``) serialised the scan
while other cores idled.  DTaint's bottom-up design makes the fix
natural: per-function summaries are **context-independent** (paper
Algorithm 2), so any partition of the function set can be symbolically
executed in parallel and merged before the interprocedural phase —
findings stay byte-identical to an unsharded run.

A sharded image becomes a three-phase task graph run on the ordinary
:class:`~repro.pipeline.workerpool.WorkerPool` (idle workers steal
whatever shard task is queued next, across images):

``plan``
    One worker loads the image, derives a direct-call edge set (the
    real call graph in incremental mode — it is already built for
    fingerprinting — or a vectorised instruction scout otherwise),
    condenses it into dependency components and groups them into
    cost-balanced shards.  Trivially small images short-circuit to a
    plain unsharded run in place.
``exec`` (one task per shard)
    Recovers CFGs for its function subset only (summaries never
    depend on *which* other functions were recovered: direct-call
    targets resolve against the full symbol table), runs symexec +
    type inference + the first alias pass, extracts structure layouts,
    and spills its results for the merge.
``merge``
    Reassembles the full function map (skeletons, not lifted IR),
    re-builds the call graph, adopts the shard summaries verbatim and
    runs the inherently serial tail — indirect-call resolution,
    bottom-up interprocedural enrichment, the second alias pass and
    detection — exactly as the unsharded pipeline would.

Byte-identity argument, in brief: shard summaries equal unsharded
summaries (context independence + full-symbol-table target
resolution), the merged function map reproduces the unsharded map's
iteration order (address-sorted locals, then import stubs in symbol
order), and every later stage is a deterministic function of those
two inputs.  ``tests/test_shards.py`` enforces this on the golden
corpus for shard counts 1, 2 and auto.
"""

import contextlib
import gc
import os
import pickle
import time
from dataclasses import dataclass, replace

import networkx as nx
import numpy as np

from repro import profiling
from repro.errors import PipelineError
from repro.pipeline.cache import (
    ReportCache,
    SummaryCache,
    binary_sha256,
    report_fingerprint,
    _atomic_write,
)

AUTO_SHARDS = -1

# Below this total cost (bytes of function body) an image is not worth
# splitting: per-task dispatch would dominate the saved compute.
MIN_SHARD_COST = 8192


class NameFilter:
    """Picklable ``function_filter`` callable selecting a name set."""

    def __init__(self, names):
        self.names = frozenset(names)

    def __call__(self, name):
        return name in self.names


@dataclass
class FunctionSkeleton:
    """A :class:`~repro.cfg.model.Function` stand-in for the merge.

    Shipping lifted IR across the process boundary costs more than
    re-lifting (tens of MB per hot image); the merge only needs what
    the call graph and the report counters read — name, address,
    block count and the call sites.
    """

    name: str
    addr: int
    size: int
    block_count: int
    call_sites: tuple
    is_import: bool = False

    def contains(self, addr):
        return self.addr <= addr < self.addr + self.size


def skeletonize(function):
    return FunctionSkeleton(
        name=function.name,
        addr=function.addr,
        size=function.size,
        block_count=function.block_count,
        call_sites=tuple(function.call_sites),
        is_import=function.is_import,
    )


# ---------------------------------------------------------------------------
# Direct-call scout: vectorised edge recovery for shard planning.

def scan_direct_call_edges(binary, names):
    """Approximate direct-call edges ``(caller, callee)`` via numpy.

    One pass over the executable segments decoding only the two
    call-shaped instruction patterns (ARM ``BL`` with the
    always-condition, MIPS ``JAL``) as vectorised word operations —
    milliseconds where CFG recovery takes seconds.  Accuracy only
    shapes shard *balance* (a missed edge can split a component that
    interprocedural work later treats as one unit); correctness never
    depends on it, because summaries are context-independent.
    """
    selected = {
        name: symbol for name, symbol in binary.functions.items()
        if name in names and not symbol.is_import
    }
    if not selected:
        return []
    entries = np.array(
        sorted(symbol.addr for symbol in selected.values()), dtype=np.int64
    )
    by_addr = {symbol.addr: name for name, symbol in selected.items()}
    ends = entries + np.array(
        [selected[by_addr[int(addr)]].size for addr in entries],
        dtype=np.int64,
    )
    arch = binary.arch.name
    dtype = ">u4" if binary.arch.is_big_endian else "<u4"
    edges = set()
    for vaddr, data, executable in binary.segments:
        if not executable or len(data) < 4:
            continue
        words = np.frombuffer(
            data[: len(data) // 4 * 4], dtype=dtype
        ).astype(np.int64)
        addrs = vaddr + 4 * np.arange(words.shape[0], dtype=np.int64)
        if arch == "arm":
            mask = (words >> 24) == 0xEB          # BL, condition AL
            offsets = words[mask] & 0x00FFFFFF
            offsets = np.where(
                offsets & 0x00800000, offsets - 0x01000000, offsets
            )
            targets = addrs[mask] + 8 + (offsets << 2)
            sites = addrs[mask]
        elif arch == "mips":
            mask = (words >> 26) == 0x03           # JAL
            targets = (
                ((addrs[mask] + 4) & ~np.int64(0x0FFFFFFF))
                | ((words[mask] & 0x03FFFFFF) << 2)
            )
            sites = addrs[mask]
        else:
            continue
        if targets.shape[0] == 0:
            continue
        # Exact-match targets to function entries.
        hit = np.searchsorted(entries, targets)
        valid = (hit < entries.shape[0]) & (
            entries[np.minimum(hit, entries.shape[0] - 1)] == targets
        )
        # Map each call site to its containing function by extent.
        owner = np.searchsorted(entries, sites, side="right") - 1
        valid &= owner >= 0
        owner = np.maximum(owner, 0)
        valid &= sites < ends[owner]
        for site_owner, target in zip(owner[valid], targets[valid]):
            caller = by_addr[int(entries[site_owner])]
            callee = by_addr[int(target)]
            if caller != callee:
                edges.add((caller, callee))
    return sorted(edges)


# ---------------------------------------------------------------------------
# The planner: condensation components -> cost-balanced shards.

@dataclass
class ShardPlan:
    shards: tuple        # tuple of sorted name tuples
    costs: tuple         # per-shard cost totals
    components: int
    edges: int

    def describe(self):
        return {
            "shards": len(self.shards),
            "components": self.components,
            "edges": self.edges,
            "costs": [round(float(c), 1) for c in self.costs],
        }


def plan_shards(costs, edges, shard_count, min_shard_cost=MIN_SHARD_COST):
    """Group callgraph-condensation components into balanced shards.

    ``costs`` maps function name -> estimated analysis cost (function
    size in bytes by default; callers with cached per-function phase
    times can substitute them).  Components (strongly-connected
    subgraphs of the direct call graph — the unit
    :mod:`repro.increment.fingerprint` already hashes closures over)
    are walked in topological order and greedily assigned to the
    least-loaded shard, so mutually-recursive clusters never split and
    the balance bound is the classic list-scheduling 2-approximation.
    Deterministic: nodes, edges, components and ties all resolve in
    sorted order.
    """
    names = sorted(costs)
    graph = nx.DiGraph()
    graph.add_nodes_from(names)
    edge_count = 0
    for caller, callee in sorted(edges):
        if caller in costs and callee in costs and caller != callee:
            graph.add_edge(caller, callee)
            edge_count += 1
    condensed = nx.condensation(graph)
    components = [
        tuple(sorted(condensed.nodes[scc]["members"]))
        for scc in nx.topological_sort(condensed)
    ]
    total = float(sum(costs.values()))
    effective = max(int(shard_count), 1)
    if min_shard_cost > 0:
        effective = min(effective, max(int(total // min_shard_cost), 1))
    effective = min(effective, max(len(components), 1))
    if effective <= 1:
        return ShardPlan(
            shards=(tuple(names),) if names else (),
            costs=(total,) if names else (),
            components=len(components), edges=edge_count,
        )
    bins = [[] for _ in range(effective)]
    loads = [0.0] * effective
    for members in components:
        cost = sum(costs[name] for name in members)
        index = min(range(effective), key=lambda i: (loads[i], i))
        bins[index].extend(members)
        loads[index] += cost
    shards, shard_costs = [], []
    for index, members in enumerate(bins):
        if members:
            shards.append(tuple(sorted(members)))
            shard_costs.append(loads[index])
    return ShardPlan(
        shards=tuple(shards), costs=tuple(shard_costs),
        components=len(components), edges=edge_count,
    )


# ---------------------------------------------------------------------------
# Worker-side phase executors (dispatched from execute_job).

def _base_config(job):
    """The job's DTaintConfig, identically to ``_load_job_binary``."""
    from repro.core import DTaintConfig

    if job.kind == "profile":
        from repro.corpus.profiles import analyzed_module_prefixes

        return DTaintConfig(modules=analyzed_module_prefixes(job.key),
                            alias_engine=job.alias_engine)
    return DTaintConfig(modules=tuple(job.modules),
                        alias_engine=job.alias_engine)


def _materialize(job, spill_dir):
    """Load the job's binary; returns (name, binary, config, sha, spill).

    ``spill`` is an on-disk ELF every later shard/merge task can
    reload in O(ms): the job's own path for ``elf`` jobs, a spilled
    copy of the built image for ``profile`` jobs (building a synthetic
    profile costs seconds — paying it once in the plan instead of once
    per task is most of the sharding win for profile jobs).
    """
    from repro.loader.binary import load_elf

    if job.kind == "profile":
        from repro.corpus.profiles import build_firmware

        built = build_firmware(job.key, scale=job.scale)
        sha = binary_sha256(built.elf_bytes)
        spill = os.path.join(spill_dir, "%s.elf" % sha)
        if not os.path.exists(spill):
            _atomic_write(spill, built.elf_bytes)
        # Analyse the ELF round-trip form, so plan/exec/merge all see
        # bit-identical inputs regardless of which one built it.
        return (built.name, load_elf(built.elf_bytes, name=built.name),
                _base_config(job), sha, spill)
    if job.kind == "elf":
        with open(job.path, "rb") as handle:
            data = handle.read()
        return (job.path, load_elf(data, name=job.path),
                _base_config(job), sha256_of(data), job.path)
    raise PipelineError("unknown job kind %r" % job.kind)


def sha256_of(data):
    return binary_sha256(data)


def _selected_names(binary, config):
    """Non-import function names the detector would select."""
    names = []
    selected = 0
    for symbol in binary.local_functions:
        if config.modules and not any(
            symbol.name.startswith(prefix) for prefix in config.modules
        ):
            continue
        if symbol.is_import:
            continue
        selected += 1
        names.append(symbol.name)
    return names, selected


def execute_phase(job, attempt, cache_dir=None, use_summary_cache=True,
                  use_report_cache=True, use_fleet_index=False):
    """Dispatch one shard-lifecycle task (worker side)."""
    options = dict(
        cache_dir=cache_dir, use_summary_cache=use_summary_cache,
        use_report_cache=use_report_cache, use_fleet_index=use_fleet_index,
    )
    if job.shard_phase == "plan":
        return _execute_plan(job, attempt, **options)
    if job.shard_phase == "exec":
        return _execute_shard(job, attempt, **options)
    if job.shard_phase == "merge":
        return _execute_merge(job, attempt, **options)
    raise PipelineError("unknown shard phase %r" % job.shard_phase)


@contextlib.contextmanager
def _gc_paused():
    """Suspend the cyclic GC over an allocation-heavy region.

    Unpickling a shard spill and the interprocedural enrichment both
    allocate millions of small, mostly-acyclic expression nodes; the
    generational collector's scans over them are pure overhead.  One
    explicit collection on exit reclaims whatever cycles did form.

    Inside a pool worker this is a no-op: the worker loop already has
    gc disabled for the whole job and runs the catch-up collection
    after posting the result (see ``_pool_worker_main``), so the
    ``was_enabled`` guard keeps the collection off the critical path
    there while direct callers (tests, one-shot runs) still get it.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def _unsharded_fallthrough(job, attempt, options):
    """Run the image unsharded in place (plan decided not to split)."""
    from repro.pipeline.scheduler import execute_job

    plain = replace(
        job, shard_phase="", shard_index=-1, shard_names=(),
        shard_payload=None, shards=0,
    )
    return execute_job(plain, attempt=attempt, **options)


def _execute_plan(job, attempt, cache_dir=None, use_summary_cache=True,
                  use_report_cache=True, use_fleet_index=False):
    """Phase 1: load, probe caches, partition into shards."""
    from repro.eval.resources import measure
    from repro.pipeline.scheduler import _inject_fault

    _inject_fault(job, attempt)
    with measure() as usage:
        payload = _plan_body(
            job, attempt, cache_dir=cache_dir,
            use_summary_cache=use_summary_cache,
            use_report_cache=use_report_cache,
            use_fleet_index=use_fleet_index,
        )
    # ``measure`` only finalises ``usage`` in its exit hook, so the
    # numbers are read *after* the block — for every payload shape
    # (plan, cache-hit ok, unsharded fallthrough alike).
    resources = payload.setdefault("resources", {})
    resources.update(
        wall_seconds=usage.wall_seconds,
        cpu_seconds=usage.cpu_seconds,
        max_rss_mb=usage.max_rss_mb,
    )
    return payload


def _plan_body(job, attempt, cache_dir, use_summary_cache,
               use_report_cache, use_fleet_index):
    baseline = profiling.PROFILER.snapshot()
    options = dict(
        cache_dir=cache_dir, use_summary_cache=use_summary_cache,
        use_report_cache=use_report_cache, use_fleet_index=use_fleet_index,
    )
    spill_dir = (job.shard_payload or {}).get("spill_dir", "")
    build_start = time.perf_counter()
    bin_name, binary, config, sha, spill = _materialize(job, spill_dir)
    build_seconds = time.perf_counter() - build_start

    cache_stats = {"summary_hits": 0, "summary_misses": 0,
                   "report_cache_hit": False, "cache_corrupt": 0}
    report_fp = report_fingerprint(config) if cache_dir else None
    if cache_dir and use_report_cache and not use_fleet_index:
        report_dict = ReportCache(cache_dir).get(sha, report_fp)
        if report_dict is not None:
            # Whole-report hit: nothing to shard, return the
            # standard completed-job payload right here.
            cache_stats["report_cache_hit"] = True
            return _ok_payload(report_dict, sha, cache_stats, None,
                               build_seconds)

    fingerprints_blob = None
    segment_records = None
    with profiling.PROFILER.phase("plan"):
        names, selected = _selected_names(binary, config)
        costs = {
            name: float(max(binary.functions[name].size, 64))
            for name in names
        }
    if use_fleet_index and cache_dir and use_summary_cache:
        from repro.core import DTaint
        from repro.increment.index import pack_segment
        from repro.increment.reuse import open_incremental_cache

        bound = open_incremental_cache(cache_dir, sha, config)
        detector = DTaint(binary, config=config, name=bin_name,
                          summary_cache=bound)
        detector.build_cfg()
        report_dict = bound.lookup_image_report(report_fp)
        if report_dict is not None:
            cache_stats["image_findings_hit"] = True
            bound.flush()
            cache_stats.update(bound.stats)
            return _ok_payload(
                report_dict, sha, cache_stats,
                bound.closure_fingerprints(), build_seconds,
            )
        with profiling.PROFILER.phase("plan"):
            # The real call graph is already built for
            # fingerprinting — use it (strictly better balance
            # than the scout) and ship the fingerprints so shards
            # skip recomputing closures on partial graphs.
            edges = sorted(
                (caller, callee)
                for caller, callee in detector.call_graph.graph.edges()
                if caller in costs and callee in costs
            )
            fingerprints_blob = pickle.dumps(
                bound.fingerprints, protocol=4
            )
            closures = sorted(
                fp.closure for fp in bound.fingerprints.values()
            )
            segment_records = pack_segment(
                bound.index.collect_records(closures)
            )
    else:
        with profiling.PROFILER.phase("plan"):
            edges = scan_direct_call_edges(binary, set(names))

    with profiling.PROFILER.phase("plan"):
        plan = plan_shards(costs, edges, max(job.shards, 1))
    if len(plan.shards) <= 1:
        return _unsharded_fallthrough(job, attempt, options)
    profile = profiling.delta(baseline, profiling.PROFILER.snapshot())
    return {
        "status": "plan",
        "sha256": sha,
        "spill": spill,
        "bin_name": bin_name,
        "selected": selected,
        "shards": [list(names) for names in plan.shards],
        "plan_info": plan.describe(),
        "fingerprints_blob": fingerprints_blob,
        "segment_records": segment_records,
        "profile": profile,
        "cache": cache_stats,
        "resources": {"build_seconds": build_seconds},
    }


def _ok_payload(report_dict, sha, cache_stats, fingerprints,
                build_seconds):
    return {
        "status": "ok",
        "report": report_dict,
        "sha256": sha,
        "cache": cache_stats,
        "fingerprints": fingerprints,
        "fired_faults": [],
        "resources": {"build_seconds": build_seconds},
    }


def _open_shard_cache(sp, sha, config, binary, cache_dir,
                      use_summary_cache, use_fleet_index):
    """The shard-local summary cache (never flushes the bundle)."""
    if not (cache_dir and use_summary_cache):
        return None
    if use_fleet_index:
        from repro.increment.index import load_segment
        from repro.increment.reuse import open_incremental_cache
        from repro.pipeline import sharedstate

        bound = open_incremental_cache(cache_dir, sha, config)
        blob = sp.get("fingerprints_blob")
        if blob:
            bound.seed_fingerprints(binary, pickle.loads(blob))
        segment_ref = sp.get("segment_ref")
        if segment_ref:
            records = sharedstate.attach_once(
                tuple(segment_ref), load_segment
            )
            if records:
                bound.index.attach_segment(records)
        return bound
    return SummaryCache(cache_dir).for_binary(sha, config)


def _execute_shard(job, attempt, cache_dir=None, use_summary_cache=True,
                   use_report_cache=True, use_fleet_index=False):
    """Phase 2: symexec + alias pass 1 + layouts for one function subset."""
    from repro.alias import get_engine
    from repro.core import DTaint
    from repro.core.types import infer_types
    from repro.eval.resources import measure
    from repro.loader.binary import load_elf
    from repro.pipeline import sharedstate
    from repro.symexec.value import attach_arena_seed

    sp = job.shard_payload or {}
    baseline = profiling.PROFILER.snapshot()
    with measure() as usage, _gc_paused():
        arena_ref = sp.get("arena_ref")
        if arena_ref:
            sharedstate.attach_once(tuple(arena_ref), attach_arena_seed)
        with open(sp["spill"], "rb") as handle:
            data = handle.read()
        binary = load_elf(data, name=sp.get("bin_name", job.job_id))
        sha = sp["sha256"]
        config = _base_config(job)
        shard_config = replace(
            config, function_filter=NameFilter(job.shard_names)
        )
        bound = _open_shard_cache(
            sp, sha, config, binary, cache_dir, use_summary_cache,
            use_fleet_index,
        )
        detector = DTaint(binary, config=shard_config,
                          name=sp.get("bin_name", ""), summary_cache=bound)
        detector.build_cfg()
        detector.analyze_functions()
        # Bundle blobs are captured *pre-alias* (the cache stores
        # summaries as ``put`` serialized them; the alias pass below
        # mutates the live objects only).
        blobs = {}
        if bound is not None:
            store = bound.bound if use_fleet_index else bound
            addrs = {s.addr for s in detector.summaries.values()}
            blobs = store.export_blobs(addrs)
        types_map = {}
        alias_engine = get_engine(config.alias_engine)
        for name, summary in list(detector.summaries.items()):
            started = time.perf_counter()
            try:
                types = infer_types(summary)
                types_map[name] = types
                if config.enable_aliasing:
                    alias_engine.apply(summary, types)
            except Exception as exc:
                detector._degrade(name, summary.addr, "aliasing", exc,
                                  started)
                del detector.summaries[name]
                types_map.pop(name, None)
        layouts = {}
        addr_taken = ()
        if config.enable_structure_similarity:
            from repro.core.structure import (
                address_taken_functions,
                extract_layouts,
            )

            with profiling.PROFILER.phase("similarity"):
                for name, summary in detector.summaries.items():
                    try:
                        layouts[name] = extract_layouts(summary)
                    except Exception:
                        pass          # merge recomputes on a miss
                try:
                    addr_taken = tuple(sorted(_summary_address_taken(
                        binary, detector.summaries,
                        address_taken_functions,
                    )))
                except Exception:
                    addr_taken = ()
        if bound is not None and use_fleet_index:
            # Batched per-shard index write; the per-binary bundle is
            # flushed exactly once, by the merge.
            bound.flush(include_bundle=False)
        skeletons = [
            skeletonize(function)
            for function in detector.functions.values()
            if not function.is_import
        ]
        # The profile delta rides in the spill so the merge can fold
        # every shard's phase seconds into the image's phase_times
        # without the scheduler re-threading per-task payloads.
        profile = profiling.delta(baseline, profiling.PROFILER.snapshot())
        out = {
            "index": job.shard_index,
            "summaries": detector.summaries,
            "types": types_map,
            "layouts": layouts,
            "skeletons": skeletons,
            "degraded": list(detector.degraded.values()),
            "blobs": blobs,
            "addr_taken": addr_taken,
            "profile": profile,
            "cache": dict(bound.stats) if bound is not None else {},
        }
        spill_out = os.path.join(
            sp["spill_dir"],
            "%s.shard.%d.%d.pkl" % (sha, job.shard_gen, job.shard_index),
        )
        _atomic_write(spill_out, pickle.dumps(out, protocol=4))
    return {
        "status": "shard",
        "index": job.shard_index,
        "gen": job.shard_gen,
        "spill_out": spill_out,
        "functions": len(detector.summaries),
        "degraded": len(detector.degraded),
        "profile": profile,
        "cache": dict(bound.stats) if bound is not None else {},
        "resources": {
            "wall_seconds": usage.wall_seconds,
            "cpu_seconds": usage.cpu_seconds,
            "max_rss_mb": usage.max_rss_mb,
        },
    }


def _summary_address_taken(binary, summaries, address_taken_functions):
    """The summary-sourced half of ``address_taken_functions``."""
    data_part = address_taken_functions(binary, None)
    full = address_taken_functions(binary, summaries)
    return full - data_part


def _execute_merge(job, attempt, cache_dir=None, use_summary_cache=True,
                   use_report_cache=True, use_fleet_index=False):
    """Phase 3: deterministic reassembly + the serial pipeline tail."""
    from repro.cfg import build_call_graph
    from repro.cfg.model import Function
    from repro.core import DTaint
    from repro.eval.resources import measure
    from repro.loader.binary import load_elf

    sp = job.shard_payload or {}
    baseline = profiling.PROFILER.snapshot()
    with measure() as usage, _gc_paused():
        with open(sp["spill"], "rb") as handle:
            data = handle.read()
        binary = load_elf(data, name=sp.get("bin_name", job.job_id))
        sha = sp["sha256"]
        config = _base_config(job)
        shard_outs = []
        for path in sp["shard_spills"]:
            with open(path, "rb") as handle:
                shard_outs.append(pickle.load(handle))
        shard_outs.sort(key=lambda out: out["index"])

        with profiling.PROFILER.phase("merge"):
            skeletons = sorted(
                (sk for out in shard_outs for sk in out["skeletons"]),
                key=lambda sk: sk.addr,
            )
            # Reproduce the unsharded function-map order exactly:
            # address-sorted recovered locals, then import stubs in
            # symbol-table order (CFGBuilder.build_all's layout).
            functions = {sk.name: sk for sk in skeletons}
            for symbol in binary.functions.values():
                if symbol.is_import and symbol.name not in functions:
                    functions[symbol.name] = Function(
                        name=symbol.name, addr=symbol.addr,
                        size=symbol.size, is_import=True,
                    )
            summaries, types_map, layouts = {}, {}, {}
            degraded, addr_taken, blobs = [], set(), {}
            shard_profiles = []
            cache_totals = {}
            for out in shard_outs:
                summaries.update(out["summaries"])
                types_map.update(out["types"])
                layouts.update(out["layouts"])
                degraded.extend(out["degraded"])
                addr_taken.update(out["addr_taken"])
                blobs.update(out["blobs"])
                shard_profiles.append(out["profile"])
            call_graph = build_call_graph(functions)

        bound = _open_shard_cache(
            sp, sha, config, binary, cache_dir, use_summary_cache,
            use_fleet_index,
        )
        if bound is not None:
            store = bound.bound if use_fleet_index else bound
            store.preload(blobs)
        detector = DTaint(binary, config=config,
                          name=sp.get("bin_name", ""), summary_cache=bound)
        detector.attach_prebuilt(
            functions, call_graph, sp.get("selected", 0),
            degraded=degraded, summaries=summaries, types=types_map,
            structure={
                "layouts": layouts,
                "address_taken": sorted(addr_taken),
            },
        )
        report = detector.detect()
        report_dict = report.to_dict()

        cache_stats = {"summary_hits": 0, "summary_misses": 0,
                       "report_cache_hit": False, "cache_corrupt": 0}
        for out in shard_outs:
            for key, value in (out.get("cache") or {}).items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    cache_totals[key] = cache_totals.get(key, 0) + value
        for key, value in (sp.get("plan_cache") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                cache_totals[key] = cache_totals.get(key, 0) + value
        cache_stats.update(cache_totals)
        fingerprints = None
        if bound is not None:
            if use_fleet_index:
                report_fp = report_fingerprint(config)
                bound.store_image_report(report_fp, report_dict)
                fingerprints = bound.closure_fingerprints()
            bound.flush()
            for key, value in bound.stats.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    cache_stats[key] = cache_stats.get(key, 0) + value
        if cache_dir and use_report_cache and not use_fleet_index:
            ReportCache(cache_dir).put(
                sha, report_fingerprint(config), report_dict
            )
        # The report's own profile covers only this process; fold in
        # the plan's and every shard's deltas so per-image phase_times
        # reflect total analysis compute (each process contributed its
        # own delta exactly once — nothing double-counts).
        merge_profile = profiling.delta(
            baseline, profiling.PROFILER.snapshot()
        )
        profiles = [p for p in [sp.get("plan_profile")] + shard_profiles
                    if p] + [merge_profile]
        report_dict["phase_profile"] = profiling.merge(profiles)
        report_dict["summary_cache"] = {
            "hits": int(cache_stats.get("summary_hits", 0)),
            "misses": int(cache_stats.get("summary_misses", 0)),
        }
        for path in sp["shard_spills"]:
            try:
                os.unlink(path)
            except OSError:
                pass
    return {
        "status": "ok",
        "report": report_dict,
        "sha256": sha,
        "cache": cache_stats,
        "fingerprints": fingerprints,
        "fired_faults": [],
        "shard_stats": {
            "shards": len(shard_outs),
            "plan_info": sp.get("plan_info", {}),
        },
        "resources": {
            "wall_seconds": usage.wall_seconds,
            "cpu_seconds": usage.cpu_seconds,
            "max_rss_mb": usage.max_rss_mb,
            "build_seconds": sp.get("build_seconds", 0.0),
        },
    }
