"""Content-addressed stores for per-function summaries and reports.

DTaint's bottom-up design (paper Algorithm 2) makes every per-function
symbolic summary context-independent, so a summary is fully determined
by the binary's bytes, the function's address, and the analysis knobs
that shape symbolic exploration.  That triple —
``(binary-sha256, function-addr, config-fingerprint)`` — is the cache
key: re-scanning an unchanged binary turns the symexec hot path into a
sequence of near-free lookups, and a single flipped byte anywhere in
the binary invalidates everything (content addressing, no mtime
games).

Cache-key hierarchy
-------------------

Two addressing schemes coexist, from most to least specific:

* **Binary-scoped** (this module) — keyed by *where* the code was
  found: ``(binary-sha256, function-addr, config-fingerprint)``.
  Exact, cheap (one dict probe per function), invalidated wholesale
  by any rebuild.

  - :class:`SummaryCache` — per-function :class:`FunctionSummary`
    blobs, bundled one file per ``(binary, fingerprint)`` pair so a
    warm lookup costs one read, not thousands
    (``<dir>/summaries/<xx>/<sha>-<cfgfp>.pkl``).
  - :class:`ReportCache` — whole-run report dicts keyed by
    ``(binary-sha256, report-fingerprint)``; a hit skips the entire
    analysis, not just symexec
    (``<dir>/reports/<xx>/<sha>-<reportfp>.json``).

* **Content-addressed** (:mod:`repro.increment.index`) — keyed by
  *what* the code is: the function's position-independent Merkle
  closure fingerprint (``<dir>/fleet/sum/...``) or the whole image's
  closure-set fingerprint (``<dir>/fleet/img/...``).  Survives
  relinking, version rebuilds and cross-image duplication; a hit pays
  a relocation pass.  :class:`repro.increment.reuse.
  IncrementalSummaryCache` layers it behind the binary-scoped bundle,
  back-filling the bundle on every fleet hit.

Both layers share ``config-fingerprint`` semantics (only the knobs
that shape the artefact participate) and ``CACHE_FORMAT_VERSION``.

Writes are atomic (tmp + ``os.replace``) so parallel fleet workers
never expose torn files to each other.  A bundle that fails to load
(torn write survived a crash, disk corruption, stale format) is
**quarantined**: renamed to ``<name>.corrupt`` and counted, so the
fault is visible in telemetry and the next run rebuilds a clean bundle
instead of tripping over the same bytes forever.
"""

import hashlib
import json
import os
import pickle

from repro.core.interproc import (
    SUMMARY_FORMAT_VERSION,
    deserialize_summary,
    serialize_summary,
)

# v2: reports grew coverage/degraded sections; summaries carry
# deadline_hit (see SUMMARY_FORMAT_VERSION).
# v3: hash-consed SymExpr pickle layout; reports carry phase_profile.
# v4: deadline_seconds joined the summary fingerprint — a summary
# truncated under a tight deadline must never serve a deadline-free
# run (or vice versa).
# v5: alias_engine joined the summary fingerprint — warm caches, the
# increment dedup index and service idempotent submission keys are all
# engine-aware, so artifacts produced under one alias engine are never
# served to a run using the other.
CACHE_FORMAT_VERSION = 5

# DTaintConfig knobs that shape the *per-function* summaries (symbolic
# exploration limits) vs. the ones that only steer later whole-report
# stages.  Keeping the summary fingerprint narrow maximises reuse: a
# different trace depth or ablation switch re-detects over the same
# cached summaries.  deadline_seconds belongs here because the soft
# deadline truncates path exploration mid-function.  alias_engine
# belongs here because the increment layer's dedup/reuse records are
# derived from summaries whose downstream life (alias pass, enrich,
# findings reuse) depends on the engine; sharing them across engines
# would let one engine's warm artifacts answer for the other.
_SUMMARY_FIELDS = (
    "max_paths", "max_blocks_per_path", "deadline_seconds", "alias_engine",
)
_REPORT_FIELDS = _SUMMARY_FIELDS + (
    "max_trace_depth", "enable_aliasing", "enable_structure_similarity",
)


def binary_sha256(data):
    """Content address of a binary: hex SHA-256 of its bytes."""
    return hashlib.sha256(data).hexdigest()


def _fingerprint(fields):
    blob = json.dumps(fields, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def summary_fingerprint(config):
    """Fingerprint of the config knobs that shape function summaries."""
    fields = {name: getattr(config, name) for name in _SUMMARY_FIELDS}
    fields["cache_version"] = CACHE_FORMAT_VERSION
    fields["summary_version"] = SUMMARY_FORMAT_VERSION
    return _fingerprint(fields)


def report_fingerprint(config):
    """Fingerprint of the full config, or ``None`` when uncacheable.

    A ``function_filter`` callable cannot be fingerprinted reliably,
    so configs carrying one opt out of whole-report caching (summary
    caching still applies — the filter only selects functions).
    """
    if config.function_filter is not None:
        return None
    fields = {name: getattr(config, name) for name in _REPORT_FIELDS}
    fields["modules"] = list(config.modules)
    fields["cache_version"] = CACHE_FORMAT_VERSION
    return _fingerprint(fields)


def _atomic_write(path, data):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _quarantine(path):
    """Move a corrupt cache file aside to ``<path>.corrupt``.

    Keeps the evidence for debugging while guaranteeing the bad bytes
    are never re-read; racing workers may both try, so a lost rename
    is fine (the other worker already moved or replaced it).
    """
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        pass


class BoundSummaryCache:
    """The summary store scoped to one ``(binary, fingerprint)`` pair.

    This is the object handed to :class:`~repro.core.detector.DTaint`:
    the detector keys by function address only, keeping ``repro.core``
    free of any pipeline-layer concepts.  Summaries are pickled at
    ``put`` time, so later in-place mutation of the live object (the
    alias passes rewrite summaries) never leaks into the cache.
    """

    def __init__(self, path):
        self.path = path
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._bundle = None      # addr -> serialized blob
        self._dirty = False

    def _load(self):
        if self._bundle is not None:
            return self._bundle
        self._bundle = {}
        try:
            with open(self.path, "rb") as handle:
                loaded = pickle.load(handle)
        except FileNotFoundError:
            return self._bundle  # absent == empty cache
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError):
            self.corrupt += 1
            _quarantine(self.path)
            return self._bundle
        if isinstance(loaded, dict):
            self._bundle = loaded
        else:
            self.corrupt += 1
            _quarantine(self.path)
        return self._bundle

    def get(self, addr):
        """Deserialized summary for ``addr``, or ``None`` (counted)."""
        blob = self._load().get(addr)
        summary = deserialize_summary(blob) if blob is not None else None
        if summary is None:
            self.misses += 1
        else:
            self.hits += 1
        return summary

    def put(self, addr, summary):
        self._load()[addr] = serialize_summary(summary)
        self._dirty = True

    def export_blobs(self, addrs=None):
        """Serialized blobs for ``addrs`` (all when ``None``).

        Shard workers use this to ship their freshly-``put`` pre-alias
        blobs to the merge task, which preloads them and performs the
        single whole-file flush (the bundle's write protocol is
        replace-whole-file — concurrent shard flushes would clobber
        each other).
        """
        bundle = self._load()
        if addrs is None:
            return dict(bundle)
        return {
            addr: bundle[addr] for addr in addrs if addr in bundle
        }

    def preload(self, blobs):
        """Adopt shipped blobs; existing entries win, new ones dirty."""
        bundle = self._load()
        for addr, blob in blobs.items():
            if addr not in bundle:
                bundle[addr] = blob
                self._dirty = True

    def flush(self):
        """Persist the bundle atomically; no-op when nothing changed."""
        if not self._dirty:
            return
        _atomic_write(self.path, pickle.dumps(self._bundle, protocol=4))
        self._dirty = False

    @property
    def stats(self):
        return {
            "summary_hits": self.hits,
            "summary_misses": self.misses,
            "cache_corrupt": self.corrupt,
        }


class SummaryCache:
    """Root of the on-disk summary store (``<dir>/summaries/``)."""

    def __init__(self, root):
        self.root = root

    def for_binary(self, sha, config):
        """A :class:`BoundSummaryCache` for one binary + config."""
        name = "%s-%s.pkl" % (sha, summary_fingerprint(config))
        return BoundSummaryCache(
            os.path.join(self.root, "summaries", sha[:2], name)
        )


class ReportCache:
    """Whole-report results keyed by ``(binary-sha256, fingerprint)``."""

    def __init__(self, root):
        self.root = root
        self.corrupt = 0

    def _path(self, sha, fingerprint):
        name = "%s-%s.json" % (sha, fingerprint)
        return os.path.join(self.root, "reports", sha[:2], name)

    def get(self, sha, fingerprint):
        if fingerprint is None:
            return None
        path = self._path(sha, fingerprint)
        try:
            with open(path, "r") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            _quarantine(path)
            return None

    def put(self, sha, fingerprint, report_dict):
        if fingerprint is None:
            return
        blob = json.dumps(report_dict, sort_keys=True).encode("utf-8")
        _atomic_write(self._path(sha, fingerprint), blob)


# ---------------------------------------------------------------------------
# Garbage collection (``dtaint cache gc``).


def _summary_blob_stale(blob):
    """True when a bundled blob predates the current summary format."""
    if not isinstance(blob, (bytes, bytearray)) or len(blob) <= 6:
        return True
    if blob[:5] != b"DTSUM":
        return True
    return blob[5] != SUMMARY_FORMAT_VERSION


def _gc_bundle(path, dry_run, stats):
    """Prune stale per-function blobs inside one summary bundle."""
    try:
        with open(path, "rb") as handle:
            bundle = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, ValueError,
            AttributeError, ImportError):
        stats["files_removed"] += 1
        stats["bytes_freed"] += _file_size(path)
        if not dry_run:
            os.unlink(path)
        return
    if not isinstance(bundle, dict):
        stats["files_removed"] += 1
        stats["bytes_freed"] += _file_size(path)
        if not dry_run:
            os.unlink(path)
        return
    stale = [
        addr for addr, blob in bundle.items() if _summary_blob_stale(blob)
    ]
    if not stale:
        return
    stats["stale_summaries"] += len(stale)
    if len(stale) == len(bundle):
        stats["files_removed"] += 1
        stats["bytes_freed"] += _file_size(path)
        if not dry_run:
            os.unlink(path)
        return
    if not dry_run:
        for addr in stale:
            del bundle[addr]
        _atomic_write(path, pickle.dumps(bundle, protocol=4))


def _gc_fleet_record(path, dry_run, stats):
    """Drop a fleet-index record written under an older cache format."""
    try:
        with open(path, "rb") as handle:
            record = pickle.load(handle)
        stale = (not isinstance(record, dict)
                 or record.get("version") != CACHE_FORMAT_VERSION
                 or _summary_blob_stale(record.get("blob")))
    except (OSError, pickle.UnpicklingError, EOFError, ValueError,
            AttributeError, ImportError):
        stale = True
    if stale:
        stats["stale_summaries"] += 1
        stats["files_removed"] += 1
        stats["bytes_freed"] += _file_size(path)
        if not dry_run:
            os.unlink(path)


def _file_size(path):
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def collect_garbage(root, dry_run=False):
    """Prune quarantine leftovers and stale-format cache entries.

    Removes ``*.corrupt`` quarantine files and orphaned ``*.tmp.*``
    writes anywhere under ``root``, deletes fleet-index records whose
    format version predates :data:`CACHE_FORMAT_VERSION`, and rewrites
    summary bundles dropping blobs older than the current summary
    format (deleting bundles left empty).  With ``dry_run`` nothing is
    touched; the returned stats describe what *would* happen either
    way: ``corrupt_removed``, ``tmp_removed``, ``stale_summaries``,
    ``files_removed``, ``bytes_freed``.
    """
    stats = {
        "corrupt_removed": 0, "tmp_removed": 0, "stale_summaries": 0,
        "files_removed": 0, "bytes_freed": 0,
    }
    if not os.path.isdir(root):
        return stats
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            if filename.endswith(".corrupt"):
                stats["corrupt_removed"] += 1
                stats["bytes_freed"] += _file_size(path)
                if not dry_run:
                    os.unlink(path)
            elif ".tmp." in filename:
                stats["tmp_removed"] += 1
                stats["bytes_freed"] += _file_size(path)
                if not dry_run:
                    os.unlink(path)
            elif (os.sep + "summaries" + os.sep in path
                    and filename.endswith(".pkl")):
                _gc_bundle(path, dry_run, stats)
            elif (os.sep + os.path.join("fleet", "sum") + os.sep in path
                    and filename.endswith(".pkl")):
                _gc_fleet_record(path, dry_run, stats)
    return stats
