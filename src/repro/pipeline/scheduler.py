"""The fleet scheduler: parallel, crash-isolated, incremental runs.

The paper's headline workload is a 6,529-image corpus; this module is
the machinery that makes such a corpus tractable.  Each analysis job
(one firmware image / binary) runs in a **worker process** drawn from
a persistent :class:`~repro.pipeline.workerpool.WorkerPool`, which
preserves the three properties the original process-per-job design
bought while amortising process start-up across jobs:

* **crash isolation** — a worker segfaulting, OOM-ing or calling
  ``os._exit`` kills only its job; the scheduler observes the dead
  pipe, discards that worker, retries the job in a fresh one, and
  eventually quarantines it while the rest of the fleet proceeds;
* **per-job timeout** — the scheduler tracks a deadline per live
  worker and kills overruns with ``SIGTERM``-then-``SIGKILL``;
* **bounded retry** — every failure mode (crash, timeout, in-worker
  exception) re-queues the job up to ``retries`` extra attempts.

Workers ship results back over their pipe as plain dicts (the
report's ``to_dict()`` form), so nothing analysis-internal needs to
survive pickling across the process boundary.  Failures come back as
the typed exceptions from :mod:`repro.errors` (``AnalysisTimeout``,
``WorkerCrash``, or the worker's own ``ReproError`` subclass).

A scheduler is **reusable**: ``run()`` may be called any number of
times and healthy workers stay warm between calls — this is what the
analysis daemon (:mod:`repro.service`) builds on.  All per-run state
(result map, retry queue, backoff bookkeeping) lives inside ``run()``;
nothing leaks from one batch into the next.  Call :meth:`close` (or
use the scheduler as a context manager) to reap the pool; one-shot
callers that skip it only leave daemonic idle workers that die with
the parent process.
"""

import os
import time
import zlib
from dataclasses import dataclass, field
from multiprocessing import connection

from repro import faultinject
from repro.errors import (
    AnalysisTimeout,
    PipelineError,
    ReproError,
    WorkerCrash,
    WorkerStalled,
)
from repro.pipeline.cache import (
    ReportCache,
    SummaryCache,
    binary_sha256,
    report_fingerprint,
)
from repro.pipeline.telemetry import Telemetry
from repro.pipeline.workerpool import WorkerPool


@dataclass
class FleetJob:
    """One unit of fleet work: a vendor profile or an ELF on disk."""

    job_id: str
    kind: str = "profile"        # 'profile' | 'elf'
    key: str = ""                # corpus profile key (kind='profile')
    path: str = ""               # ELF path on disk (kind='elf')
    scale: float = 0.25          # profile build scale
    modules: tuple = ()          # analysed module prefixes (kind='elf')
    # Deterministic fault injection for chaos tests and the crash-
    # isolation acceptance check: the named fault fires while the
    # attempt number is <= fault_attempts.
    fault: str = ""              # '' | 'crash' | 'hang' | 'error'
    fault_attempts: int = 0
    # In-analysis fault injection (repro.faultinject spec strings, e.g.
    # 'decode@cfg:handle_request'): installed in the worker before the
    # scan so the fault degrades one function instead of the job.
    faults: tuple = ()

    def describe_target(self):
        return self.key if self.kind == "profile" else self.path


@dataclass
class JobResult:
    """Terminal state of one job after scheduling completes."""

    job: FleetJob
    status: str = "pending"      # 'ok' | 'quarantined'
    attempts: int = 0
    report: dict = None          # Report.to_dict() form (status 'ok')
    sha256: str = ""
    # name -> closure fingerprint (incremental runs only): the
    # position-independent identity a later --baseline diff matches on.
    fingerprints: dict = None
    error: str = ""
    error_type: str = ""
    elapsed: float = 0.0         # last attempt's wall time
    resources: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    fired_faults: list = field(default_factory=list)

    @property
    def ok(self):
        return self.status == "ok"


@dataclass
class _Running:
    job: FleetJob
    attempt: int
    worker: object               # PoolWorker serving this attempt
    started: float
    deadline: float = None
    last_heartbeat: float = 0.0  # perf_counter of the latest sign of life

    @property
    def conn(self):
        return self.worker.conn


def _load_job_binary(job):
    """Materialise the job's binary; returns (name, binary, config, sha)."""
    from repro.core import DTaintConfig

    if job.kind == "profile":
        from repro.corpus.profiles import (
            analyzed_module_prefixes,
            build_firmware,
        )

        built = build_firmware(job.key, scale=job.scale)
        config = DTaintConfig(modules=analyzed_module_prefixes(job.key))
        return built.name, built.binary, config, binary_sha256(built.elf_bytes)
    if job.kind == "elf":
        from repro.loader.binary import load_elf

        with open(job.path, "rb") as handle:
            data = handle.read()
        config = DTaintConfig(modules=tuple(job.modules))
        return job.path, load_elf(data, name=job.path), config, binary_sha256(data)
    raise PipelineError("unknown job kind %r" % job.kind)


def _inject_fault(job, attempt):
    if not job.fault or attempt > job.fault_attempts:
        return
    if job.fault == "crash":
        os._exit(70)             # simulated hard death: no result, no cleanup
    if job.fault == "hang":
        time.sleep(3600)
    if job.fault == "error":
        raise PipelineError("injected failure in job %r" % job.job_id)


def execute_job(job, attempt=1, cache_dir=None, use_summary_cache=True,
                use_report_cache=True, use_fleet_index=False):
    """Run one job to completion in *this* process; returns a payload.

    This is the body of a worker process, but it is also directly
    callable (tests, debugging a single image without the fleet
    machinery).  The payload is a plain dict: status, report dict,
    binary sha, cache counters, resource usage.

    With ``use_fleet_index`` the bound summary cache is layered over
    the content-addressed fleet store (:mod:`repro.increment`):
    summaries and whole-image findings are reused across *different*
    binaries whenever the position-independent fingerprints match, and
    the payload additionally carries each function's closure
    fingerprint for version-delta reports.
    """
    from repro.core import DTaint
    from repro.eval.resources import measure

    _inject_fault(job, attempt)
    injector = None
    if job.faults:
        # A run with injected faults must neither read a clean cached
        # result (the fault would silently not fire) nor poison the
        # shared caches with degraded output.
        injector = faultinject.install(faultinject.FaultInjector(job.faults))
        use_summary_cache = use_report_cache = use_fleet_index = False
    try:
        with measure() as usage:
            build_start = time.perf_counter()
            name, binary, config, sha = _load_job_binary(job)
            build_seconds = time.perf_counter() - build_start

            cache_stats = {"summary_hits": 0, "summary_misses": 0,
                           "report_cache_hit": False, "cache_corrupt": 0}
            fingerprints = None
            report_dict = None
            report_fp = report_fingerprint(config) if cache_dir else None
            report_cache = ReportCache(cache_dir) if cache_dir else None
            # Incremental runs skip the per-sha report probe: the
            # image-findings layer below subsumes it (a byte-identical
            # binary always matches its own closures) and, unlike it,
            # yields the closure fingerprints that --baseline deltas
            # compare against.
            if (report_cache is not None and use_report_cache
                    and not use_fleet_index):
                report_dict = report_cache.get(sha, report_fp)
                if report_dict is not None:
                    cache_stats["report_cache_hit"] = True

            if report_dict is None:
                bound = None
                if cache_dir and use_summary_cache:
                    if use_fleet_index:
                        from repro.increment.reuse import (
                            open_incremental_cache,
                        )

                        bound = open_incremental_cache(cache_dir, sha, config)
                    else:
                        bound = SummaryCache(cache_dir).for_binary(sha, config)
                detector = DTaint(binary, config=config, name=name,
                                  summary_cache=bound)
                if use_fleet_index and bound is not None:
                    # Whole-image reuse: if every function's closure
                    # fingerprint matches a previously analysed image
                    # (same config), its findings apply verbatim modulo
                    # a uniform address shift — skip analysis entirely.
                    detector.build_cfg()
                    report_dict = bound.lookup_image_report(report_fp)
                    if report_dict is not None:
                        cache_stats["image_findings_hit"] = True
                if report_dict is None:
                    report = detector.run()
                    report_dict = report.to_dict()
                    if use_fleet_index and bound is not None:
                        bound.store_image_report(report_fp, report_dict)
                if bound is not None:
                    bound.flush()
                    cache_stats.update(bound.stats)
                    if use_fleet_index:
                        fingerprints = bound.closure_fingerprints()
                if report_cache is not None and use_report_cache:
                    report_cache.put(sha, report_fp, report_dict)
            if report_cache is not None:
                cache_stats["cache_corrupt"] += report_cache.corrupt
    finally:
        if injector is not None:
            faultinject.uninstall()
    return {
        "status": "ok",
        "report": report_dict,
        "sha256": sha,
        "cache": cache_stats,
        "fingerprints": fingerprints,
        "fired_faults": injector.fired_specs() if injector else [],
        "resources": {
            "wall_seconds": usage.wall_seconds,
            "cpu_seconds": usage.cpu_seconds,
            "max_rss_mb": usage.max_rss_mb,
            "build_seconds": build_seconds,
        },
    }


class FleetScheduler:
    """Fans fleet jobs over warm pool workers with retry + quarantine."""

    def __init__(self, jobs=1, timeout=None, retries=1, cache_dir=None,
                 use_summary_cache=True, use_report_cache=True,
                 use_fleet_index=False, telemetry=None, backoff=0.1,
                 backoff_cap=5.0, pool=None, rlimits=None, heartbeat=0.0,
                 heartbeat_timeout=0.0):
        if jobs < 1:
            raise PipelineError("need at least one worker slot")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = max(retries, 0)
        self.backoff = max(backoff or 0.0, 0.0)
        self.backoff_cap = backoff_cap
        self.telemetry = telemetry or Telemetry(path=None)
        self._rlimits = dict(rlimits) if rlimits else None
        self.heartbeat = max(float(heartbeat or 0.0), 0.0)
        # A worker silent longer than this while holding a job is
        # presumed frozen and reaped (SIGTERM→SIGKILL).  Only
        # meaningful when heartbeats are on.  The default is generous
        # (10 intervals, floor 5s): the beat thread shares the GIL
        # with the analysis, so long C-level operations legitimately
        # delay beats — the detector targets frozen processes, not
        # slow ones.
        if self.heartbeat and not heartbeat_timeout:
            heartbeat_timeout = max(10.0 * self.heartbeat, 5.0)
        self.heartbeat_timeout = (
            max(float(heartbeat_timeout or 0.0), 0.0)
            if self.heartbeat else 0.0
        )
        self._options = {
            "cache_dir": cache_dir,
            "use_summary_cache": use_summary_cache,
            "use_report_cache": use_report_cache,
            "use_fleet_index": use_fleet_index,
        }
        # An externally supplied pool is shared (the daemon hands one
        # scheduler per batch the same warm workers); an owned pool is
        # created lazily on the first run() so the fork happens after
        # the caller finished configuring the parent process.
        self._pool = pool
        self._owns_pool = pool is None

    @property
    def pool(self):
        if self._pool is None:
            self._pool = WorkerPool(
                rlimits=self._rlimits, heartbeat=self.heartbeat
            )
        return self._pool

    def close(self):
        """Reap the owned worker pool (shared pools are left alone)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------

    def run(self, fleet_jobs):
        """Run every job to a terminal state; returns ordered results."""
        fleet_jobs = list(fleet_jobs)
        results = {job.job_id: JobResult(job=job) for job in fleet_jobs}
        if len(results) != len(fleet_jobs):
            raise PipelineError("duplicate job_id in fleet")
        # Queue entries are (job, attempt, not_before): retries sit in
        # the queue until their backoff delay expires, without ever
        # blocking the scheduler loop or other jobs' slots.
        queue = [(job, 1, 0.0) for job in fleet_jobs]
        running = []
        run_start = time.perf_counter()
        self.telemetry.emit(
            "run_start", jobs=len(fleet_jobs), workers=self.jobs,
            timeout=self.timeout, retries=self.retries,
            cache_dir=self._options["cache_dir"],
        )
        try:
            while queue or running:
                now = time.perf_counter()
                while len(running) < self.jobs:
                    entry = next(
                        (e for e in queue if e[2] <= now), None
                    )
                    if entry is None:
                        break
                    queue.remove(entry)
                    running.append(self._launch(entry[0], entry[1]))
                if not running:
                    # Everything left is backing off; sleep to the
                    # soonest eligibility instead of spinning.
                    soonest = min(e[2] for e in queue)
                    time.sleep(min(max(soonest - now, 0.0), 0.05))
                    continue
                self._poll(running, queue, results)
        finally:
            for record in running:   # unwind on unexpected scheduler error
                self.pool.discard(record.worker)
        wall = time.perf_counter() - run_start
        ordered = [results[job.job_id] for job in fleet_jobs]
        self.telemetry.emit(
            "run_finish", wall_seconds=round(wall, 4),
            ok=sum(1 for r in ordered if r.ok),
            quarantined=sum(1 for r in ordered if not r.ok),
            summary_hits=sum(
                r.cache.get("summary_hits", 0) for r in ordered
            ),
            summary_misses=sum(
                r.cache.get("summary_misses", 0) for r in ordered
            ),
            cache_corrupt=sum(
                r.cache.get("cache_corrupt", 0) for r in ordered
            ),
            fleet_hits=sum(
                r.cache.get("fleet_hits", 0) for r in ordered
            ),
            fleet_misses=sum(
                r.cache.get("fleet_misses", 0) for r in ordered
            ),
            degraded=sum(
                (r.report or {}).get("coverage", {}).get("degraded", 0)
                for r in ordered
            ),
        )
        return ordered

    # ------------------------------------------------------------------

    def _launch(self, job, attempt):
        worker = self.pool.acquire()
        try:
            worker.send_job(job, attempt, self._options)
        except (BrokenPipeError, OSError):
            # Worker died between fork and first job: replace it once.
            self.pool.discard(worker)
            worker = self.pool.acquire()
            worker.send_job(job, attempt, self._options)
        started = time.perf_counter()
        deadline = started + self.timeout if self.timeout else None
        self.telemetry.emit(
            "job_start", job=job.job_id, attempt=attempt, pid=worker.pid,
            target=job.describe_target(),
        )
        return _Running(job=job, attempt=attempt, worker=worker,
                        started=started, deadline=deadline,
                        last_heartbeat=started)

    def _poll(self, running, queue, results):
        """One scheduler tick: reap finished workers, enforce deadlines.

        Three independent liveness checks per live worker, in order:
        a readable pipe (result, typed error, or heartbeat), the
        per-job wall-clock deadline, and — when heartbeats are on —
        the stall detector, which reaps a worker whose beat went
        silent even though its deadline has not expired (frozen
        process, SIGSTOP, deadlock in native code).
        """
        conns = [record.conn for record in running]
        ready = connection.wait(conns, timeout=0.05) if conns else []
        now = time.perf_counter()
        finished = []
        for record in running:
            if record.conn in ready:
                outcome = self._reap(record)
                if outcome is None:      # heartbeat(s) only: still alive
                    continue
                finished.append((record, outcome))
            elif record.deadline is not None and now > record.deadline:
                self.pool.discard(record.worker)
                finished.append((record, AnalysisTimeout(
                    record.job.job_id, self.timeout
                )))
            elif (self.heartbeat_timeout
                    and now - record.last_heartbeat > self.heartbeat_timeout):
                self.pool.discard(record.worker)
                finished.append((record, WorkerStalled(
                    record.job.job_id, now - record.last_heartbeat
                )))
        for record, outcome in finished:
            running.remove(record)
            elapsed = time.perf_counter() - record.started
            if isinstance(outcome, dict):
                self._complete(record, outcome, elapsed, results)
            else:
                self._fail(record, outcome, elapsed, queue, results)

    def _reap(self, record):
        """Drain the worker's pipe; returns a payload, an error, or None.

        ``None`` means only heartbeats arrived — the job is still in
        flight.  A clean payload (including an in-worker typed error)
        leaves the worker warm for the next job, unless it carries
        ``recycle`` (resource budget spent: orderly retirement); a
        dead pipe means the process itself is gone and the worker is
        discarded.
        """
        while True:
            try:
                payload = record.conn.recv()
            except (EOFError, OSError):
                record.worker.process.join(5)
                crash = WorkerCrash(record.job.job_id,
                                    exitcode=record.worker.process.exitcode)
                self.pool.discard(record.worker)
                return crash
            if (isinstance(payload, dict)
                    and payload.get("control") == "heartbeat"):
                record.last_heartbeat = time.perf_counter()
                if record.conn.poll():
                    continue             # more frames queued behind it
                return None
            break
        if payload.pop("recycle", False):
            self.pool.recycle(record.worker)
        else:
            self.pool.release(record.worker)
        if payload.get("status") == "ok":
            return payload
        # The worker caught its own exception: rehydrate it typed.
        error = PipelineError(
            "%s: %s" % (payload.get("error_type", "Error"),
                        payload.get("error", ""))
        )
        error.worker_error_type = payload.get("error_type", "")
        return error

    def _complete(self, record, payload, elapsed, results):
        result = results[record.job.job_id]
        result.status = "ok"
        result.attempts = record.attempt
        result.report = payload["report"]
        result.sha256 = payload.get("sha256", "")
        result.fingerprints = payload.get("fingerprints")
        result.cache = payload.get("cache", {})
        result.fired_faults = payload.get("fired_faults", [])
        result.resources = payload.get("resources", {})
        result.elapsed = elapsed
        result.error = result.error_type = ""
        cache = result.cache
        cache_event = {
            "job": record.job.job_id,
            "summary_hits": cache.get("summary_hits", 0),
            "summary_misses": cache.get("summary_misses", 0),
            "report_cache_hit": cache.get("report_cache_hit", False),
        }
        if "fleet_hits" in cache or "fleet_misses" in cache:
            cache_event["fleet_hits"] = cache.get("fleet_hits", 0)
            cache_event["fleet_misses"] = cache.get("fleet_misses", 0)
            cache_event["reuse_ratio"] = cache.get("reuse_ratio", 0.0)
            cache_event["image_findings_hit"] = cache.get(
                "image_findings_hit", False
            )
        self.telemetry.emit("cache_report", **cache_event)
        if cache.get("cache_corrupt"):
            self.telemetry.emit(
                "cache_corrupt", job=record.job.job_id,
                count=cache["cache_corrupt"],
            )
        profile = result.report.get("phase_profile", {})
        if (profile.get("seconds") and not cache.get("report_cache_hit")
                and not cache.get("image_findings_hit")):
            # A report served whole from cache carries the *original*
            # run's profile; re-emitting it would claim analysis time
            # this job never spent.
            self.telemetry.emit(
                "phase_times", job=record.job.job_id,
                seconds={
                    k: round(v, 4) for k, v in profile["seconds"].items()
                },
                counters=profile.get("counters", {}),
            )
        coverage = result.report.get("coverage", {})
        if coverage.get("degraded"):
            self.telemetry.emit(
                "job_degraded", job=record.job.job_id,
                degraded=coverage.get("degraded", 0),
                truncated=coverage.get("truncated", 0),
                degraded_functions=[
                    d.get("function", "")
                    for d in result.report.get("degraded_functions", [])
                ],
            )
        self.telemetry.emit(
            "job_finish", job=record.job.job_id, attempt=record.attempt,
            elapsed=round(elapsed, 4),
            stage_seconds=result.report.get("stage_seconds", {}),
            max_rss_mb=round(result.resources.get("max_rss_mb", 0.0), 1),
            vulnerable_paths=len(result.report.get("vulnerable_paths", [])),
            vulnerabilities=len(result.report.get("vulnerabilities", [])),
            degraded=coverage.get("degraded", 0),
        )

    def _fail(self, record, error, elapsed, queue, results):
        result = results[record.job.job_id]
        result.attempts = record.attempt
        result.elapsed = elapsed
        result.error = str(error)
        result.error_type = getattr(
            error, "worker_error_type", "") or type(error).__name__
        kind = ("job_timeout" if isinstance(error, AnalysisTimeout)
                else "job_crash" if isinstance(error, WorkerCrash)
                else "job_stalled" if isinstance(error, WorkerStalled)
                else "job_error")
        self.telemetry.emit(
            kind, job=record.job.job_id, attempt=record.attempt,
            elapsed=round(elapsed, 4), error=result.error,
            error_type=result.error_type,
        )
        if record.attempt <= self.retries:
            delay = self.backoff_delay(record.job.job_id, record.attempt + 1)
            self.telemetry.emit(
                "job_retry", job=record.job.job_id,
                next_attempt=record.attempt + 1,
                backoff_seconds=round(delay, 4),
            )
            queue.append(
                (record.job, record.attempt + 1,
                 time.perf_counter() + delay)
            )
        else:
            result.status = "quarantined"
            self.telemetry.emit(
                "job_quarantined", job=record.job.job_id,
                attempts=record.attempt, error_type=result.error_type,
            )

    def backoff_delay(self, job_id, attempt):
        """Exponential backoff with deterministic jitter.

        ``base * 2^(attempt-2) * (1 + j)`` where the jitter fraction
        ``j in [0, 1)`` is derived from ``crc32(job_id:attempt)`` —
        the same job retries on the same schedule every run, while
        distinct jobs spread out instead of thundering back together.
        """
        if not self.backoff or attempt <= 1:
            return 0.0
        key = ("%s:%d" % (job_id, attempt)).encode("utf-8")
        jitter = (zlib.crc32(key) % 1000) / 1000.0
        delay = self.backoff * (2 ** (attempt - 2)) * (1.0 + jitter)
        return min(delay, self.backoff_cap)
