"""The fleet scheduler: parallel, crash-isolated, incremental runs.

The paper's headline workload is a 6,529-image corpus; this module is
the machinery that makes such a corpus tractable.  Each analysis job
(one firmware image / binary) runs in a **worker process** drawn from
a persistent :class:`~repro.pipeline.workerpool.WorkerPool`, which
preserves the three properties the original process-per-job design
bought while amortising process start-up across jobs:

* **crash isolation** — a worker segfaulting, OOM-ing or calling
  ``os._exit`` kills only its job; the scheduler observes the dead
  pipe, discards that worker, retries the job in a fresh one, and
  eventually quarantines it while the rest of the fleet proceeds;
* **per-job timeout** — the scheduler tracks a deadline per live
  worker and kills overruns with ``SIGTERM``-then-``SIGKILL``;
* **bounded retry** — every failure mode (crash, timeout, in-worker
  exception) re-queues the job up to ``retries`` extra attempts.

Workers ship results back over their pipe as plain dicts (the
report's ``to_dict()`` form), so nothing analysis-internal needs to
survive pickling across the process boundary.  Failures come back as
the typed exceptions from :mod:`repro.errors` (``AnalysisTimeout``,
``WorkerCrash``, or the worker's own ``ReproError`` subclass).

A scheduler is **reusable**: ``run()`` may be called any number of
times and healthy workers stay warm between calls — this is what the
analysis daemon (:mod:`repro.service`) builds on.  All per-run state
(result map, retry queue, backoff bookkeeping) lives inside ``run()``;
nothing leaks from one batch into the next.  Call :meth:`close` (or
use the scheduler as a context manager) to reap the pool; one-shot
callers that skip it only leave daemonic idle workers that die with
the parent process.
"""

import os
import shutil
import tempfile
import time
import zlib
from dataclasses import dataclass, field, replace
from multiprocessing import connection

from repro import faultinject
from repro.errors import (
    AnalysisTimeout,
    PipelineError,
    ReproError,
    WorkerCrash,
    WorkerStalled,
)
from repro.pipeline import sharedstate
from repro.pipeline.cache import (
    ReportCache,
    SummaryCache,
    binary_sha256,
    report_fingerprint,
)
from repro.pipeline.shards import AUTO_SHARDS
from repro.pipeline.telemetry import Telemetry
from repro.pipeline.workerpool import WorkerPool


@dataclass
class FleetJob:
    """One unit of fleet work: a profile, an ELF, or a firmware member.

    ``kind='firmware'`` points ``path`` at a packed image; the worker
    runs the recursive extractor and analyses the one ELF named by
    ``member`` (an extraction-tree member id, see
    :meth:`repro.firmware.unpack.ExtractionTree.elves`) — empty means
    the preferred target binary.  :func:`expand_firmware_jobs` fans an
    image into one such job per embedded ELF.
    """

    job_id: str
    kind: str = "profile"        # 'profile' | 'elf' | 'firmware'
    key: str = ""                # corpus profile key (kind='profile')
    path: str = ""               # ELF/image path on disk
    scale: float = 0.25          # profile build scale
    modules: tuple = ()          # analysed module prefixes (kind='elf')
    member: str = ""             # extraction member id (kind='firmware')
    alias_engine: str = "dtaint"  # 'dtaint' | 'sse' (repro.alias)
    # Deterministic fault injection for chaos tests and the crash-
    # isolation acceptance check: the named fault fires while the
    # attempt number is <= fault_attempts.
    fault: str = ""              # '' | 'crash' | 'hang' | 'error'
    fault_attempts: int = 0
    # In-analysis fault injection (repro.faultinject spec strings, e.g.
    # 'decode@cfg:handle_request'): installed in the worker before the
    # scan so the fault degrades one function instead of the job.
    faults: tuple = ()
    # Intra-image sharding (repro.pipeline.shards): 0/1 = unsharded,
    # N>1 = split into at most N shards, AUTO_SHARDS (-1) = let the
    # scheduler pick from its worker count.
    shards: int = 0
    # Shard-lifecycle fields; the scheduler stamps these on the task
    # copies it derives from the job — callers leave the defaults.
    shard_phase: str = ""        # '' | 'plan' | 'exec' | 'merge'
    shard_index: int = -1
    shard_names: tuple = ()
    shard_gen: int = 0           # plan generation, guards stale tasks
    shard_payload: object = None

    def describe_target(self):
        target = self.key if self.kind == "profile" else self.path
        if self.kind == "firmware" and self.member:
            target = "%s!%s" % (target, self.member)
        if self.shard_phase == "exec":
            return "%s#%d" % (target, self.shard_index)
        if self.shard_phase:
            return "%s#%s" % (target, self.shard_phase)
        return target


@dataclass
class JobResult:
    """Terminal state of one job after scheduling completes."""

    job: FleetJob
    status: str = "pending"      # 'ok' | 'quarantined'
    attempts: int = 0
    report: dict = None          # Report.to_dict() form (status 'ok')
    sha256: str = ""
    # name -> closure fingerprint (incremental runs only): the
    # position-independent identity a later --baseline diff matches on.
    fingerprints: dict = None
    error: str = ""
    error_type: str = ""
    elapsed: float = 0.0         # last attempt's wall time
    resources: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    fired_faults: list = field(default_factory=list)

    @property
    def ok(self):
        return self.status == "ok"


@dataclass
class _Running:
    job: FleetJob
    attempt: int
    worker: object               # PoolWorker serving this attempt
    started: float
    deadline: float = None
    last_heartbeat: float = 0.0  # perf_counter of the latest sign of life

    @property
    def conn(self):
        return self.worker.conn


def _load_job_binary(job):
    """Materialise the job's binary; returns (name, binary, config, sha)."""
    from repro.core import DTaintConfig

    if job.kind == "profile":
        from repro.corpus.profiles import (
            analyzed_module_prefixes,
            build_firmware,
        )

        built = build_firmware(job.key, scale=job.scale)
        config = DTaintConfig(modules=analyzed_module_prefixes(job.key),
                              alias_engine=job.alias_engine)
        return built.name, built.binary, config, binary_sha256(built.elf_bytes)
    if job.kind == "elf":
        from repro.loader.binary import load_elf

        with open(job.path, "rb") as handle:
            data = handle.read()
        config = DTaintConfig(modules=tuple(job.modules),
                              alias_engine=job.alias_engine)
        return job.path, load_elf(data, name=job.path), config, binary_sha256(data)
    if job.kind == "firmware":
        from repro.loader.binary import load_elf

        with open(job.path, "rb") as handle:
            data = handle.read()
        display, elf_bytes = extract_member(data, job.member,
                                            name=job.path)
        name = "%s!%s" % (job.path, display)
        config = DTaintConfig(modules=tuple(job.modules),
                              alias_engine=job.alias_engine)
        # The sha is the *member's*, not the image's: a binary carved
        # out of firmware and the same binary scanned flat share one
        # cache identity, so summaries and findings transfer.
        return (name, load_elf(elf_bytes, name=name), config,
                binary_sha256(elf_bytes))
    raise PipelineError("unknown job kind %r" % job.kind)


def extract_member(data, member="", name=""):
    """Unpack an image and select one ELF; returns (display, bytes).

    ``member`` is the stable tree path from
    :meth:`~repro.firmware.unpack.ExtractionTree.elves`; empty picks
    the preferred network-facing target.  An unknown member is a
    :class:`PipelineError` (a stale job spec, not a bad image).
    """
    from repro.firmware.binwalk import extract_tree, pick_target_binary

    tree = extract_tree(data, name=name)
    if not member:
        display, elf_bytes = pick_target_binary(tree)
        return display, elf_bytes
    for member_id, display, elf_bytes in tree.elves():
        if member_id == member or display == member:
            return display, elf_bytes
    raise PipelineError(
        "no extracted member %r in %s (have: %s)"
        % (member, name or "image",
           ", ".join(m for m, _d, _b in tree.elves()) or "none")
    )


def expand_firmware_jobs(job_id, path, modules=(), data=None, **extra):
    """One :class:`FleetJob` per ELF inside the image at ``path``.

    The extraction runs once here (client side); each returned job
    carries the member id so the worker re-extracts only its own
    target.  ``data`` skips the read when the caller already holds the
    blob.  Extra keyword fields are forwarded to every job.
    """
    if data is None:
        with open(path, "rb") as handle:
            data = handle.read()
    from repro.firmware.binwalk import extract_tree

    tree = extract_tree(data, name=path)
    jobs = []
    for index, (member, _display, _elf) in enumerate(tree.elves()):
        jobs.append(FleetJob(
            job_id="%s.%d" % (job_id, index), kind="firmware",
            path=path, member=member, modules=tuple(modules), **extra,
        ))
    if not jobs:
        raise PipelineError("no ELF executables inside %s" % path)
    return jobs


def _inject_fault(job, attempt):
    if not job.fault or attempt > job.fault_attempts:
        return
    if job.fault == "crash":
        os._exit(70)             # simulated hard death: no result, no cleanup
    if job.fault == "hang":
        time.sleep(3600)
    if job.fault == "error":
        raise PipelineError("injected failure in job %r" % job.job_id)


def execute_job(job, attempt=1, cache_dir=None, use_summary_cache=True,
                use_report_cache=True, use_fleet_index=False):
    """Run one job to completion in *this* process; returns a payload.

    This is the body of a worker process, but it is also directly
    callable (tests, debugging a single image without the fleet
    machinery).  The payload is a plain dict: status, report dict,
    binary sha, cache counters, resource usage.

    With ``use_fleet_index`` the bound summary cache is layered over
    the content-addressed fleet store (:mod:`repro.increment`):
    summaries and whole-image findings are reused across *different*
    binaries whenever the position-independent fingerprints match, and
    the payload additionally carries each function's closure
    fingerprint for version-delta reports.
    """
    from repro.core import DTaint
    from repro.eval.resources import measure

    if job.shard_phase:
        # Shard-lifecycle tasks (plan / exec / merge) have their own
        # executors; the plan phase re-enters here via an unsharded
        # job copy when the image turns out not worth splitting.
        from repro.pipeline.shards import execute_phase

        return execute_phase(
            job, attempt, cache_dir=cache_dir,
            use_summary_cache=use_summary_cache,
            use_report_cache=use_report_cache,
            use_fleet_index=use_fleet_index,
        )

    _inject_fault(job, attempt)
    injector = None
    if job.faults:
        # A run with injected faults must neither read a clean cached
        # result (the fault would silently not fire) nor poison the
        # shared caches with degraded output.
        injector = faultinject.install(faultinject.FaultInjector(job.faults))
        use_summary_cache = use_report_cache = use_fleet_index = False
    try:
        with measure() as usage:
            build_start = time.perf_counter()
            name, binary, config, sha = _load_job_binary(job)
            build_seconds = time.perf_counter() - build_start

            cache_stats = {"summary_hits": 0, "summary_misses": 0,
                           "report_cache_hit": False, "cache_corrupt": 0}
            fingerprints = None
            report_dict = None
            report_fp = report_fingerprint(config) if cache_dir else None
            report_cache = ReportCache(cache_dir) if cache_dir else None
            # Incremental runs skip the per-sha report probe: the
            # image-findings layer below subsumes it (a byte-identical
            # binary always matches its own closures) and, unlike it,
            # yields the closure fingerprints that --baseline deltas
            # compare against.
            if (report_cache is not None and use_report_cache
                    and not use_fleet_index):
                report_dict = report_cache.get(sha, report_fp)
                if report_dict is not None:
                    cache_stats["report_cache_hit"] = True

            if report_dict is None:
                bound = None
                if cache_dir and use_summary_cache:
                    if use_fleet_index:
                        from repro.increment.reuse import (
                            open_incremental_cache,
                        )

                        bound = open_incremental_cache(cache_dir, sha, config)
                    else:
                        bound = SummaryCache(cache_dir).for_binary(sha, config)
                detector = DTaint(binary, config=config, name=name,
                                  summary_cache=bound)
                if use_fleet_index and bound is not None:
                    # Whole-image reuse: if every function's closure
                    # fingerprint matches a previously analysed image
                    # (same config), its findings apply verbatim modulo
                    # a uniform address shift — skip analysis entirely.
                    detector.build_cfg()
                    report_dict = bound.lookup_image_report(report_fp)
                    if report_dict is not None:
                        cache_stats["image_findings_hit"] = True
                if report_dict is None:
                    report = detector.run()
                    report_dict = report.to_dict()
                    if use_fleet_index and bound is not None:
                        bound.store_image_report(report_fp, report_dict)
                if bound is not None:
                    bound.flush()
                    cache_stats.update(bound.stats)
                    if use_fleet_index:
                        fingerprints = bound.closure_fingerprints()
                if report_cache is not None and use_report_cache:
                    report_cache.put(sha, report_fp, report_dict)
            if report_cache is not None:
                cache_stats["cache_corrupt"] += report_cache.corrupt
    finally:
        if injector is not None:
            faultinject.uninstall()
    return {
        "status": "ok",
        "report": report_dict,
        "sha256": sha,
        "cache": cache_stats,
        "fingerprints": fingerprints,
        "fired_faults": injector.fired_specs() if injector else [],
        "resources": {
            "wall_seconds": usage.wall_seconds,
            "cpu_seconds": usage.cpu_seconds,
            "max_rss_mb": usage.max_rss_mb,
            "build_seconds": build_seconds,
        },
    }


class FleetScheduler:
    """Fans fleet jobs over warm pool workers with retry + quarantine."""

    def __init__(self, jobs=1, timeout=None, retries=1, cache_dir=None,
                 use_summary_cache=True, use_report_cache=True,
                 use_fleet_index=False, telemetry=None, backoff=0.1,
                 backoff_cap=5.0, pool=None, rlimits=None, heartbeat=0.0,
                 heartbeat_timeout=0.0):
        if jobs < 1:
            raise PipelineError("need at least one worker slot")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = max(retries, 0)
        self.backoff = max(backoff or 0.0, 0.0)
        self.backoff_cap = backoff_cap
        self.telemetry = telemetry or Telemetry(path=None)
        self._rlimits = dict(rlimits) if rlimits else None
        self.heartbeat = max(float(heartbeat or 0.0), 0.0)
        # A worker silent longer than this while holding a job is
        # presumed frozen and reaped (SIGTERM→SIGKILL).  Only
        # meaningful when heartbeats are on.  The default is generous
        # (10 intervals, floor 5s): the beat thread shares the GIL
        # with the analysis, so long C-level operations legitimately
        # delay beats — the detector targets frozen processes, not
        # slow ones.
        if self.heartbeat and not heartbeat_timeout:
            heartbeat_timeout = max(10.0 * self.heartbeat, 5.0)
        self.heartbeat_timeout = (
            max(float(heartbeat_timeout or 0.0), 0.0)
            if self.heartbeat else 0.0
        )
        self._options = {
            "cache_dir": cache_dir,
            "use_summary_cache": use_summary_cache,
            "use_report_cache": use_report_cache,
            "use_fleet_index": use_fleet_index,
        }
        # An externally supplied pool is shared (the daemon hands one
        # scheduler per batch the same warm workers); an owned pool is
        # created lazily on the first run() so the fork happens after
        # the caller finished configuring the parent process.
        self._pool = pool
        self._owns_pool = pool is None
        # Memoised backoff schedule, pruned when a job reaches a
        # terminal state so long daemon runs stay bounded.
        self._backoff_state = {}
        # Sharding infrastructure, all lazily created: the spill
        # directory exec/merge tasks exchange pickles through, and the
        # published interned-expression arena seed every worker shares
        # (None = not yet tried, False = publish failed, stay local).
        self._spill_dir = None
        self._arena_block = None

    @property
    def pool(self):
        if self._pool is None:
            self._pool = WorkerPool(
                rlimits=self._rlimits, heartbeat=self.heartbeat
            )
        return self._pool

    def close(self):
        """Reap the owned worker pool (shared pools are left alone)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena_block:
            self._arena_block.unlink()
        self._arena_block = None
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------

    def run(self, fleet_jobs):
        """Run every job to a terminal state; returns ordered results."""
        fleet_jobs = list(fleet_jobs)
        results = {job.job_id: JobResult(job=job) for job in fleet_jobs}
        if len(results) != len(fleet_jobs):
            raise PipelineError("duplicate job_id in fleet")
        # Queue entries are (job, attempt, not_before): retries sit in
        # the queue until their backoff delay expires, without ever
        # blocking the scheduler loop or other jobs' slots.  A job
        # marked for sharding enters as its own plan task; the plan's
        # shard tasks later jump the queue front, so idle workers
        # steal shard work from hot images before starting new ones.
        queue = []
        for job in fleet_jobs:
            resolved = self._resolve_shards(job)
            if resolved > 1:
                queue.append(
                    (replace(job, shards=resolved, shard_phase="plan",
                             shard_payload={
                                 "spill_dir": self._ensure_spill_dir(),
                             }),
                     1, 0.0)
                )
            else:
                queue.append((job, 1, 0.0))
        # job_id -> in-flight shard fan-out bookkeeping (plan payload,
        # outstanding shard set, published per-run shared blocks).
        shard_states = {}
        running = []
        run_start = time.perf_counter()
        self.telemetry.emit(
            "run_start", jobs=len(fleet_jobs), workers=self.jobs,
            timeout=self.timeout, retries=self.retries,
            cache_dir=self._options["cache_dir"],
        )
        try:
            while queue or running:
                now = time.perf_counter()
                while len(running) < self.jobs:
                    entry = next(
                        (e for e in queue if e[2] <= now), None
                    )
                    if entry is None:
                        break
                    queue.remove(entry)
                    running.append(self._launch(entry[0], entry[1]))
                if not running:
                    # Everything left is backing off; sleep to the
                    # soonest eligibility instead of spinning.
                    soonest = min(e[2] for e in queue)
                    time.sleep(min(max(soonest - now, 0.0), 0.05))
                    continue
                self._poll(running, queue, results, shard_states)
        finally:
            for record in running:   # unwind on unexpected scheduler error
                self.pool.discard(record.worker)
            for state in shard_states.values():
                for block in state.get("blocks", ()):
                    block.unlink()
        wall = time.perf_counter() - run_start
        ordered = [results[job.job_id] for job in fleet_jobs]
        self.telemetry.emit(
            "run_finish", wall_seconds=round(wall, 4),
            ok=sum(1 for r in ordered if r.ok),
            quarantined=sum(1 for r in ordered if not r.ok),
            summary_hits=sum(
                r.cache.get("summary_hits", 0) for r in ordered
            ),
            summary_misses=sum(
                r.cache.get("summary_misses", 0) for r in ordered
            ),
            cache_corrupt=sum(
                r.cache.get("cache_corrupt", 0) for r in ordered
            ),
            fleet_hits=sum(
                r.cache.get("fleet_hits", 0) for r in ordered
            ),
            fleet_misses=sum(
                r.cache.get("fleet_misses", 0) for r in ordered
            ),
            degraded=sum(
                (r.report or {}).get("coverage", {}).get("degraded", 0)
                for r in ordered
            ),
        )
        return ordered

    # ------------------------------------------------------------------

    def _launch(self, job, attempt):
        worker = self.pool.acquire()
        try:
            worker.send_job(job, attempt, self._options)
        except (BrokenPipeError, OSError):
            # Worker died between fork and first job: replace it once.
            self.pool.discard(worker)
            worker = self.pool.acquire()
            worker.send_job(job, attempt, self._options)
        started = time.perf_counter()
        deadline = started + self.timeout if self.timeout else None
        if job.shard_phase:
            self.telemetry.emit(
                "shard_task_start", job=job.job_id, attempt=attempt,
                pid=worker.pid, target=job.describe_target(),
                phase=job.shard_phase, shard=job.shard_index,
            )
        else:
            self.telemetry.emit(
                "job_start", job=job.job_id, attempt=attempt,
                pid=worker.pid, target=job.describe_target(),
            )
        return _Running(job=job, attempt=attempt, worker=worker,
                        started=started, deadline=deadline,
                        last_heartbeat=started)

    def _poll(self, running, queue, results, shard_states=None):
        """One scheduler tick: reap finished workers, enforce deadlines.

        Three independent liveness checks per live worker, in order:
        a readable pipe (result, typed error, or heartbeat), the
        per-job wall-clock deadline, and — when heartbeats are on —
        the stall detector, which reaps a worker whose beat went
        silent even though its deadline has not expired (frozen
        process, SIGSTOP, deadlock in native code).
        """
        conns = [record.conn for record in running]
        ready = connection.wait(conns, timeout=0.05) if conns else []
        now = time.perf_counter()
        finished = []
        for record in running:
            if record.conn in ready:
                outcome = self._reap(record)
                if outcome is None:      # heartbeat(s) only: still alive
                    continue
                finished.append((record, outcome))
            elif record.deadline is not None and now > record.deadline:
                self.pool.discard(record.worker)
                finished.append((record, AnalysisTimeout(
                    record.job.job_id, self.timeout
                )))
            elif (self.heartbeat_timeout
                    and now - record.last_heartbeat > self.heartbeat_timeout):
                self.pool.discard(record.worker)
                finished.append((record, WorkerStalled(
                    record.job.job_id, now - record.last_heartbeat
                )))
        if shard_states is None:
            shard_states = {}
        for record, outcome in finished:
            running.remove(record)
            elapsed = time.perf_counter() - record.started
            if record.job.shard_phase:
                if not isinstance(outcome, dict):
                    self._fail_shard(record, outcome, elapsed, queue,
                                     results, shard_states)
                elif outcome.get("status") == "ok":
                    # A plan that short-circuited (cache hit, image too
                    # small) or a finished merge: a complete result.
                    self._finish_sharded_ok(record, outcome, elapsed,
                                            results, shard_states)
                else:
                    self._advance_shard(record, outcome, elapsed, queue,
                                        shard_states)
            elif isinstance(outcome, dict):
                self._complete(record, outcome, elapsed, results)
            else:
                self._fail(record, outcome, elapsed, queue, results)

    def _reap(self, record):
        """Drain the worker's pipe; returns a payload, an error, or None.

        ``None`` means only heartbeats arrived — the job is still in
        flight.  A clean payload (including an in-worker typed error)
        leaves the worker warm for the next job, unless it carries
        ``recycle`` (resource budget spent: orderly retirement); a
        dead pipe means the process itself is gone and the worker is
        discarded.
        """
        while True:
            try:
                payload = record.conn.recv()
            except (EOFError, OSError):
                record.worker.process.join(5)
                crash = WorkerCrash(record.job.job_id,
                                    exitcode=record.worker.process.exitcode)
                self.pool.discard(record.worker)
                return crash
            if (isinstance(payload, dict)
                    and payload.get("control") == "heartbeat"):
                record.last_heartbeat = time.perf_counter()
                if record.conn.poll():
                    continue             # more frames queued behind it
                return None
            break
        if payload.pop("recycle", False):
            self.pool.recycle(record.worker)
        else:
            self.pool.release(record.worker)
        if payload.get("status") in ("ok", "plan", "shard"):
            return payload
        # The worker caught its own exception: rehydrate it typed.
        error = PipelineError(
            "%s: %s" % (payload.get("error_type", "Error"),
                        payload.get("error", ""))
        )
        error.worker_error_type = payload.get("error_type", "")
        return error

    # -- shard lifecycle -----------------------------------------------

    def _resolve_shards(self, job):
        """Effective shard count for a job (<=1 means run unsharded).

        Jobs carrying in-analysis fault specs never shard: the
        injector's install/uninstall and cache bypass are scoped to a
        single worker process.
        """
        count = int(job.shards or 0)
        if count == 0 or job.faults:
            return 0
        if count == AUTO_SHARDS:
            # Over-decompose relative to the worker count so the
            # greedy planner's tail imbalance amortises and freed
            # workers always find another shard to steal.
            return max(2, min(4 * self.jobs, 16))
        return count

    def _ensure_spill_dir(self):
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="dtaint-shards-")
        return self._spill_dir

    def _ensure_arena_ref(self):
        """Publish the interned-expression seed pool once per scheduler.

        Idle workers attach immediately via the pool's control
        channel; busy ones attach lazily from the ref each shard task
        carries (the worker-side memo makes repeats free).  Publishing
        is strictly an optimisation — on any failure workers simply
        build their own arenas, as an unsharded run would.
        """
        if self._arena_block is None:
            try:
                from repro.symexec.value import export_arena_seed

                self._arena_block = sharedstate.publish(
                    export_arena_seed(), label="dtaint-arena"
                )
            except Exception:
                self._arena_block = False
            else:
                self.pool.share("arena", self._arena_block.ref)
        return self._arena_block.ref if self._arena_block else None

    def _advance_shard(self, record, payload, elapsed, queue, shard_states):
        """Fold one finished plan/exec task into the fan-out state."""
        jid = record.job.job_id
        if payload.get("status") == "plan":
            self._accept_plan(record, payload, queue, shard_states)
            return
        state = shard_states.get(jid)
        if state is None or payload.get("gen") != state["gen"]:
            return      # stale task from a superseded (failed) plan
        state["done"][payload["index"]] = payload
        self.telemetry.emit(
            "shard_task_finish", job=jid, shard=payload["index"],
            elapsed=round(elapsed, 4),
            functions=payload.get("functions", 0),
            degraded=payload.get("degraded", 0),
        )
        if len(state["done"]) == state["pending"]:
            self._enqueue_merge(record, state, queue)

    def _accept_plan(self, record, payload, queue, shard_states):
        jid = record.job.job_id
        shards = payload["shards"]
        blocks = []
        segment_ref = None
        if payload.get("segment_records"):
            # Fleet dedup-index records every shard is about to probe,
            # published once instead of read per worker per function.
            block = sharedstate.publish(
                payload["segment_records"], label="dtaint-index"
            )
            blocks.append(block)
            segment_ref = block.ref
        base = {
            "sha256": payload["sha256"],
            "spill": payload["spill"],
            "spill_dir": self._ensure_spill_dir(),
            "bin_name": payload.get("bin_name", ""),
            "fingerprints_blob": payload.get("fingerprints_blob"),
            "segment_ref": segment_ref,
            "arena_ref": self._ensure_arena_ref(),
        }
        shard_states[jid] = {
            "gen": record.attempt,
            "attempt": record.attempt,
            "payload": payload,
            "base": base,
            "pending": len(shards),
            "done": {},
            "t0": record.started,
            "blocks": blocks,
        }
        plan_info = payload.get("plan_info", {})
        self.telemetry.emit(
            "shard_plan", job=jid, shards=len(shards),
            components=plan_info.get("components", 0),
            edges=plan_info.get("edges", 0),
        )
        # Front of the queue: finishing a hot image's shards beats
        # starting fresh images, and any idle worker can steal one.
        queue[:0] = [
            (replace(record.job, shard_phase="exec", shard_index=index,
                     shard_names=tuple(names), shard_gen=record.attempt,
                     shard_payload=base),
             record.attempt, 0.0)
            for index, names in enumerate(shards)
        ]

    def _enqueue_merge(self, record, state, queue):
        plan = state["payload"]
        ordered = [state["done"][i] for i in sorted(state["done"])]
        merge_payload = dict(state["base"])
        merge_payload.update(
            selected=plan.get("selected", 0),
            shard_spills=[out["spill_out"] for out in ordered],
            plan_profile=plan.get("profile"),
            plan_cache=plan.get("cache"),
            plan_info=plan.get("plan_info", {}),
            build_seconds=plan.get("resources", {}).get(
                "build_seconds", 0.0
            ),
        )
        queue.insert(0, (
            replace(record.job, shard_phase="merge", shard_index=-1,
                    shard_names=(), shard_gen=state["gen"],
                    shard_payload=merge_payload),
            state["attempt"], 0.0,
        ))

    def _finish_sharded_ok(self, record, payload, elapsed, results,
                           shard_states):
        state = shard_states.pop(record.job.job_id, None)
        if state is not None:
            for block in state.get("blocks", ()):
                block.unlink()
            # The image's wall time spans plan start to merge finish;
            # per-task elapsed would under-report it in the rollup.
            elapsed = time.perf_counter() - state["t0"]
            payload.setdefault("resources", {})["image_wall_seconds"] = (
                round(elapsed, 4)
            )
            self.telemetry.emit(
                "shard_merge_finish", job=record.job.job_id,
                shards=state["pending"],
                image_wall_seconds=round(elapsed, 4),
            )
        self._complete(record, payload, elapsed, results)

    def _fail_shard(self, record, error, elapsed, queue, results,
                    shard_states):
        """Any shard-task failure falls the whole image back to an
        unsharded retry: conservative, but the fallback preserves every
        failure-handling property (bounded retry, quarantine, typed
        errors) without a shard-granular recovery protocol."""
        jid = record.job.job_id
        state = shard_states.pop(jid, None)
        if record.job.shard_phase != "plan" and state is None:
            return      # stale sibling of an already-failed generation
        if state is not None:
            for block in state.get("blocks", ()):
                block.unlink()
        queue[:] = [
            entry for entry in queue
            if not (entry[0].job_id == jid and entry[0].shard_phase)
        ]
        self.telemetry.emit(
            "shard_fallback", job=jid, phase=record.job.shard_phase,
            error_type=getattr(error, "worker_error_type", "")
            or type(error).__name__,
        )
        record.job = replace(
            record.job, shards=0, shard_phase="", shard_index=-1,
            shard_names=(), shard_gen=0, shard_payload=None,
        )
        self._fail(record, error, elapsed, queue, results)

    # ------------------------------------------------------------------

    def _complete(self, record, payload, elapsed, results):
        result = results[record.job.job_id]
        result.status = "ok"
        result.attempts = record.attempt
        result.report = payload["report"]
        result.sha256 = payload.get("sha256", "")
        result.fingerprints = payload.get("fingerprints")
        result.cache = payload.get("cache", {})
        result.fired_faults = payload.get("fired_faults", [])
        result.resources = payload.get("resources", {})
        result.elapsed = elapsed
        result.error = result.error_type = ""
        self._backoff_state.pop(record.job.job_id, None)
        cache = result.cache
        cache_event = {
            "job": record.job.job_id,
            "summary_hits": cache.get("summary_hits", 0),
            "summary_misses": cache.get("summary_misses", 0),
            "report_cache_hit": cache.get("report_cache_hit", False),
        }
        if "fleet_hits" in cache or "fleet_misses" in cache:
            cache_event["fleet_hits"] = cache.get("fleet_hits", 0)
            cache_event["fleet_misses"] = cache.get("fleet_misses", 0)
            cache_event["reuse_ratio"] = cache.get("reuse_ratio", 0.0)
            cache_event["image_findings_hit"] = cache.get(
                "image_findings_hit", False
            )
        self.telemetry.emit("cache_report", **cache_event)
        if cache.get("cache_corrupt"):
            self.telemetry.emit(
                "cache_corrupt", job=record.job.job_id,
                count=cache["cache_corrupt"],
            )
        profile = result.report.get("phase_profile", {})
        if (profile.get("seconds") and not cache.get("report_cache_hit")
                and not cache.get("image_findings_hit")):
            # A report served whole from cache carries the *original*
            # run's profile; re-emitting it would claim analysis time
            # this job never spent.
            self.telemetry.emit(
                "phase_times", job=record.job.job_id,
                seconds={
                    k: round(v, 4) for k, v in profile["seconds"].items()
                },
                counters=profile.get("counters", {}),
            )
        coverage = result.report.get("coverage", {})
        if coverage.get("degraded"):
            self.telemetry.emit(
                "job_degraded", job=record.job.job_id,
                degraded=coverage.get("degraded", 0),
                truncated=coverage.get("truncated", 0),
                degraded_functions=[
                    d.get("function", "")
                    for d in result.report.get("degraded_functions", [])
                ],
            )
        self.telemetry.emit(
            "job_finish", job=record.job.job_id, attempt=record.attempt,
            elapsed=round(elapsed, 4),
            stage_seconds=result.report.get("stage_seconds", {}),
            max_rss_mb=round(result.resources.get("max_rss_mb", 0.0), 1),
            vulnerable_paths=len(result.report.get("vulnerable_paths", [])),
            vulnerabilities=len(result.report.get("vulnerabilities", [])),
            degraded=coverage.get("degraded", 0),
        )

    def _fail(self, record, error, elapsed, queue, results):
        result = results[record.job.job_id]
        result.attempts = record.attempt
        result.elapsed = elapsed
        result.error = str(error)
        result.error_type = getattr(
            error, "worker_error_type", "") or type(error).__name__
        kind = ("job_timeout" if isinstance(error, AnalysisTimeout)
                else "job_crash" if isinstance(error, WorkerCrash)
                else "job_stalled" if isinstance(error, WorkerStalled)
                else "job_error")
        self.telemetry.emit(
            kind, job=record.job.job_id, attempt=record.attempt,
            elapsed=round(elapsed, 4), error=result.error,
            error_type=result.error_type,
        )
        if record.attempt <= self.retries:
            delay = self.backoff_delay(record.job.job_id, record.attempt + 1)
            self.telemetry.emit(
                "job_retry", job=record.job.job_id,
                next_attempt=record.attempt + 1,
                backoff_seconds=round(delay, 4),
            )
            queue.append(
                (record.job, record.attempt + 1,
                 time.perf_counter() + delay)
            )
        else:
            result.status = "quarantined"
            self._backoff_state.pop(record.job.job_id, None)
            self.telemetry.emit(
                "job_quarantined", job=record.job.job_id,
                attempts=record.attempt, error_type=result.error_type,
            )

    def backoff_delay(self, job_id, attempt):
        """Exponential backoff with deterministic jitter.

        ``base * 2^(attempt-2) * (1 + j)`` where the jitter fraction
        ``j in [0, 1)`` is derived from ``crc32(job_id:attempt)`` —
        the same job retries on the same schedule every run, while
        distinct jobs spread out instead of thundering back together.
        The per-job schedule is memoised and pruned when the job
        reaches a terminal state (``_complete`` / quarantine), so a
        long-lived daemon's scheduler holds state only for jobs that
        are actually mid-retry.
        """
        if not self.backoff or attempt <= 1:
            return 0.0
        per_job = self._backoff_state.setdefault(job_id, {})
        delay = per_job.get(attempt)
        if delay is None:
            key = ("%s:%d" % (job_id, attempt)).encode("utf-8")
            jitter = (zlib.crc32(key) % 1000) / 1000.0
            delay = min(
                self.backoff * (2 ** (attempt - 2)) * (1.0 + jitter),
                self.backoff_cap,
            )
            per_job[attempt] = delay
        return delay
