"""Read-only analysis state shared across pool workers.

A sharded scan fans one image's work over every pool worker, and the
naive form pays a per-worker copy of state that is identical
everywhere: the interned-expression seed pool (symexec arenas) and
the fleet dedup-index records the shards are about to probe.  This
module publishes such state **once**, from the scheduler process, as
read-only blocks every worker attaches to:

* the primary transport is POSIX shared memory
  (:class:`multiprocessing.shared_memory.SharedMemory`) — one copy in
  the page cache regardless of worker count;
* hosts without a usable ``/dev/shm`` fall back transparently to an
  mmap-able temp file (same sharing property via the page cache, one
  extra path lookup on attach).

Lifetime rules (documented in DESIGN.md): blocks are created by the
scheduler, owned by the scheduler, and unlinked by the scheduler —
``FleetScheduler.close()`` (or the end of ``run()`` for per-run
blocks) calls :func:`unlink`.  Workers only ever attach + copy out +
detach, so a worker crash can never leak or tear a block; a scheduler
crash leaves at most a named block the next boot's tmpfs wipe
reclaims.  Attachment is idempotent per worker process (a global memo
short-circuits repeats) because warm workers serve many shards.
"""

import mmap
import os
import pickle
import tempfile

try:                                      # pragma: no cover - stdlib probe
    from multiprocessing import shared_memory as _shm
except ImportError:                       # pragma: no cover
    _shm = None


class SharedBlock:
    """One published read-only block and the handle to reattach it.

    ``ref`` is a plain picklable tuple shipped to workers:
    ``("shm", name, size)`` or ``("file", path, size)``.
    """

    def __init__(self, kind, name, size, owner=None):
        self.kind = kind
        self.name = name
        self.size = size
        self._owner = owner          # parent-side SharedMemory keepalive

    @property
    def ref(self):
        return (self.kind, self.name, self.size)

    def unlink(self):
        """Release the block (owner side); safe to call twice."""
        if self.kind == "shm" and self._owner is not None:
            try:
                self._owner.close()
                self._owner.unlink()
            except (FileNotFoundError, OSError):
                pass
            self._owner = None
        elif self.kind == "file":
            try:
                os.unlink(self.name)
            except OSError:
                pass


def publish(data, label="dtaint"):
    """Publish ``data`` (bytes) as a read-only block; returns the block."""
    if _shm is not None:
        try:
            segment = _shm.SharedMemory(
                create=True, size=max(len(data), 1)
            )
            segment.buf[: len(data)] = data
            return SharedBlock("shm", segment.name, len(data),
                               owner=segment)
        except (OSError, ValueError):
            pass                     # no usable /dev/shm: fall through
    handle = tempfile.NamedTemporaryFile(
        prefix="%s-" % label, suffix=".shared", delete=False
    )
    with handle:
        handle.write(data)
    return SharedBlock("file", handle.name, len(data))


def attach(ref):
    """Read a published block back as bytes (worker side)."""
    kind, name, size = ref
    if kind == "shm":
        if _shm is None:
            raise FileNotFoundError("shared_memory unavailable")
        segment = _shm.SharedMemory(name=name)
        try:
            return bytes(segment.buf[:size])
        finally:
            segment.close()
            # Attaching registers with the resource tracker too (until
            # 3.13's track=False) — unregister, or a worker exiting
            # would unlink a block the scheduler still owns.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name,
                                            "shared_memory")
            except Exception:
                pass
    with open(name, "rb") as handle:
        if size == 0:
            return b""
        with mmap.mmap(handle.fileno(), size,
                       prot=mmap.PROT_READ) as view:
            return view[:size]


def publish_object(obj, label="dtaint"):
    """Pickle + publish an object; returns the block."""
    return publish(pickle.dumps(obj, protocol=4), label=label)


def attach_object(ref):
    """Unpickle a block published with :func:`publish_object`."""
    return pickle.loads(attach(ref))


# -- worker-side idempotent attachment --------------------------------------

_ATTACHED = {}      # ref -> summary of what attaching did (memo)


def attach_once(ref, apply):
    """Attach ``ref`` and run ``apply(data)`` once per worker process.

    Warm pool workers serve many shard tasks that all carry the same
    block refs; the memo makes repeats free.  Returns ``apply``'s
    result (memoised).  A block the owner already unlinked reads as
    ``None`` — attachment is an optimisation, never a correctness
    dependency.
    """
    key = tuple(ref)
    if key in _ATTACHED:
        return _ATTACHED[key]
    try:
        data = attach(ref)
    except (FileNotFoundError, OSError, ValueError):
        _ATTACHED[key] = None
        return None
    result = apply(data)
    _ATTACHED[key] = result
    return result
