"""Fleet-facing façade over the fault-injection harness.

The implementation lives in :mod:`repro.faultinject`: the probe points
are compiled into ``repro.core``, ``repro.cfg`` and ``repro.loader``,
which this package itself imports, so the machinery has to sit below
the pipeline layer.  Fleet code (scheduler, CLI, chaos tests) imports
it from here.

``FleetJob.faults`` carries spec strings in the ``fault@site:target``
form; :func:`~repro.pipeline.scheduler.execute_job` installs a
:class:`FaultInjector` for them inside the worker process, so an
injected fault is scoped to exactly one job.
"""

from repro.faultinject import (
    FAULT_CLASSES,
    MATCH_ANY,
    FaultInjector,
    FaultSpec,
    FiredFault,
    active,
    check,
    injected,
    install,
    pick_target,
    uninstall,
)

__all__ = [
    "FAULT_CLASSES", "MATCH_ANY", "FaultInjector", "FaultSpec",
    "FiredFault", "active", "check", "injected", "install",
    "pick_target", "uninstall",
]
