"""Structured run telemetry: JSONL events + the end-of-run table.

Every observable moment of a fleet run — scheduler decisions (job
start/finish/retry/timeout/quarantine), worker-side stage timings,
cache hits and misses, peak RSS — becomes one JSON object on one line
of an append-only file.  The format is deliberately boring: it can be
tailed during a run, grepped after one, and loaded with three lines of
Python (:func:`read_events`).

Events carry a wall-clock ``ts`` and a monotonically increasing
``seq`` assigned by the writer, so ordering is unambiguous even when
two events land in the same clock tick.
"""

import json
import threading
import time

from repro.eval.tables import format_table


class Telemetry:
    """Append-only JSONL event writer (thread-safe, line-buffered).

    Beyond the JSONL file, events **fan out** to any number of sinks
    — callables invoked with each finished record under the writer
    lock, so a sink observes events in exactly ``seq`` order.  The
    analysis daemon uses a sink to mirror the stream into the sqlite
    results store, where it becomes the per-job progress feed the
    REST API serves.  A sink that raises is dropped after the first
    failure rather than poisoning every later emit.
    """

    def __init__(self, path=None, sinks=()):
        self.path = path
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = open(path, "a") if path else None
        self._sinks = list(sinks)

    def add_sink(self, sink):
        """Register a callable receiving every event record."""
        with self._lock:
            self._sinks.append(sink)

    def emit(self, event, **fields):
        """Record one event; returns the event dict (always built)."""
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            if self._handle is not None:
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
            dead = []
            for sink in self._sinks:
                try:
                    sink(record)
                except Exception:
                    dead.append(sink)
            for sink in dead:
                self._sinks.remove(sink)
        return record

    def emit_many(self, events, **common):
        """Ship a batch of worker-collected event dicts, tagged."""
        for event in events:
            fields = dict(event)
            kind = fields.pop("event", "worker_event")
            fields.update(common)
            self.emit(kind, **fields)

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def read_events(path):
    """Load a telemetry JSONL file back into a list of dicts."""
    events = []
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _hit_rate(cache):
    hits = cache.get("summary_hits", 0)
    misses = cache.get("summary_misses", 0)
    total = hits + misses
    if total == 0:
        return "-"
    return "%.0f%%" % (100.0 * hits / total)


def aggregate_phase_profile(results):
    """Sum per-job ``phase_profile`` sections across a fleet run.

    Jobs served whole from the report cache are excluded — their
    profile describes the original computation, not this run.
    """
    from repro import profiling

    return profiling.merge(
        (result.report or {}).get("phase_profile", {})
        for result in results
        if not (result.cache or {}).get("report_cache_hit")
        and not (result.cache or {}).get("image_findings_hit")
    )


def _phase_share_note(results):
    """``phases: symexec 61% | detect 20% | ...`` or '' when untimed."""
    from repro import profiling

    shares = profiling.phase_percentages(aggregate_phase_profile(results))
    if not shares:
        return ""
    ordered = sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))
    return "phases: " + " | ".join(
        "%s %.1f%%" % (name, share) for name, share in ordered
    )


def render_fleet_summary(results, wall_seconds):
    """The end-of-run table: one row per job + aggregate footer."""
    headers = ["job", "image", "status", "attempts", "time_s",
               "cache", "rss_mb", "paths", "vulns", "degr"]
    rows = []
    total_paths = total_vulns = 0
    total_hits = total_misses = 0
    total_analyzed = total_selected = total_degraded = 0
    total_fleet_hits = total_fleet_misses = 0
    for result in results:
        report = result.report or {}
        paths = len(report.get("vulnerable_paths", []))
        vulns = len(report.get("vulnerabilities", []))
        coverage = report.get("coverage", {}) or {}
        degraded = coverage.get("degraded", 0)
        total_paths += paths
        total_vulns += vulns
        total_analyzed += coverage.get("analyzed", 0)
        total_selected += coverage.get("selected", 0)
        total_degraded += degraded
        total_hits += result.cache.get("summary_hits", 0)
        total_misses += result.cache.get("summary_misses", 0)
        total_fleet_hits += result.cache.get("fleet_hits", 0)
        total_fleet_misses += result.cache.get("fleet_misses", 0)
        cache_note = _hit_rate(result.cache)
        if result.cache.get("report_cache_hit"):
            cache_note = "report"
        elif result.cache.get("image_findings_hit"):
            cache_note = "image"
        rows.append([
            result.job.job_id,
            report.get("binary", result.job.describe_target()),
            result.status,
            result.attempts,
            "%.2f" % result.elapsed,
            cache_note,
            "%.0f" % result.resources.get("max_rss_mb", 0.0),
            paths if result.report else "-",
            vulns if result.report else "-",
            degraded if result.report else "-",
        ])
    lookups = total_hits + total_misses
    rate = 100.0 * total_hits / lookups if lookups else 0.0
    ok = sum(1 for r in results if r.status == "ok")
    footer = (
        "%d/%d jobs ok, analyzed %d/%d functions (%d degraded), "
        "%d vulnerable paths, %d vulnerabilities, "
        "summary cache %d/%d hits (%.0f%%), wall %.2fs"
        % (ok, len(results), total_analyzed, total_selected,
           total_degraded, total_paths, total_vulns,
           total_hits, lookups, rate, wall_seconds)
    )
    fleet_lookups = total_fleet_hits + total_fleet_misses
    if fleet_lookups:
        footer += (
            "\nfleet dedup: %d/%d summaries reused across binaries "
            "(%.0f%% reuse ratio)"
            % (total_fleet_hits, fleet_lookups,
               100.0 * total_fleet_hits / fleet_lookups)
        )
    phase_note = _phase_share_note(results)
    if phase_note:
        footer += "\n" + phase_note
    return format_table(headers, rows, title="Fleet scan") + "\n" + footer
