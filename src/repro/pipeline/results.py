"""Machine-readable fleet results: per-image findings + rollup.

The store writes two kinds of artefact under the output directory:

* ``images/<job-id>.json`` — one file per analysed image holding the
  *canonical* findings document (see :func:`canonical_report`) plus
  run metadata (status, attempts, timings, cache counters).
* ``fleet.json`` — the fleet-level rollup: per-image rows, aggregate
  counters, and the cache totals.

Canonicalisation exists for one hard requirement: a parallel fleet
run must produce **byte-identical** findings to a serial run.  Wall
times, RSS and cache counters obviously differ between runs, so the
canonical document carries only run-independent analysis output, with
findings sorted under a total order, and is serialised with sorted
keys.  :func:`findings_fingerprint` hashes exactly that document.
"""

import hashlib
import json
import os

from repro import faultinject

_FINDING_SORT_KEYS = (
    "function", "sink_name", "sink_addr", "source_name", "source_addr",
    "kind", "expr", "hops",
)

# Run-independent counters copied from a report dict verbatim.
_REPORT_COUNTERS = (
    "binary", "arch", "analyzed_functions", "total_functions", "blocks",
    "call_graph_edges", "sinks", "indirect_resolved",
)


def _finding_key(finding):
    return tuple(finding.get(name, "") for name in _FINDING_SORT_KEYS)


# Coverage counters carried into the canonical document (the
# "analyzed 45/48, 3 degraded" accounting); elapsed times stay out.
_COVERAGE_FIELDS = (
    "analyzed", "selected", "total", "degraded", "truncated",
    "deadline_truncated", "degraded_callee_sites",
)


def canonical_report(report_dict):
    """Strip a report dict down to its run-independent analysis output."""
    canonical = {
        name: report_dict.get(name) for name in _REPORT_COUNTERS
    }
    for section in ("vulnerable_paths", "vulnerabilities",
                    "sanitized_paths"):
        findings = report_dict.get(section, []) or []
        canonical[section] = sorted(findings, key=_finding_key)
    coverage = report_dict.get("coverage", {}) or {}
    canonical["coverage"] = {
        name: coverage.get(name, 0) for name in _COVERAGE_FIELDS
    }
    canonical["degraded"] = sorted(
        (
            {
                "function": d.get("function", ""),
                "addr": d.get("addr", 0),
                "phase": d.get("phase", ""),
                "error_type": d.get("error_type", ""),
                "reason": d.get("reason", ""),
            }
            for d in report_dict.get("degraded_functions", []) or []
        ),
        key=lambda d: (d["addr"], d["function"]),
    )
    return canonical


def findings_fingerprint(report_dict):
    """SHA-256 over the canonical findings document."""
    blob = json.dumps(
        canonical_report(report_dict), sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def image_document(result):
    """The per-image results document for one terminal job result.

    This is the *only* builder of the per-image shape: the JSON store
    (:class:`ResultsStore`), the sqlite store
    (:class:`repro.service.store.ResultsDB`) and the analysis daemon
    all persist exactly this document, which is what makes migration
    between the two stores lossless.
    """
    document = {
        "job_id": result.job.job_id,
        "target": result.job.describe_target(),
        "alias_engine": getattr(result.job, "alias_engine", "dtaint"),
        "status": result.status,
        "attempts": result.attempts,
        "error": result.error,
        "error_type": result.error_type,
        "elapsed_seconds": result.elapsed,
        "resources": result.resources,
        "cache": result.cache,
        "fired_faults": list(getattr(result, "fired_faults", [])),
    }
    if result.report is not None:
        document["findings"] = canonical_report(result.report)
        document["findings_sha256"] = findings_fingerprint(result.report)
        document["stage_seconds"] = result.report.get("stage_seconds", {})
    fingerprints = getattr(result, "fingerprints", None)
    if fingerprints:
        # Position-independent closure fingerprints (incremental
        # runs): the baseline a later --baseline diff matches on.
        document["fingerprints"] = fingerprints
    return document


def rollup_document(results, wall_seconds):
    """The fleet-level rollup document for a batch of job results."""
    rows = []
    totals = {
        "jobs": len(results), "ok": 0, "quarantined": 0,
        "vulnerable_paths": 0, "vulnerabilities": 0,
        "summary_hits": 0, "summary_misses": 0, "report_cache_hits": 0,
        "cache_corrupt": 0,
        "fleet_hits": 0, "fleet_misses": 0,
        "analyzed_functions": 0, "selected_functions": 0,
        "degraded_functions": 0, "truncated_summaries": 0,
    }
    for result in results:
        report = result.report or {}
        paths = len(report.get("vulnerable_paths", []))
        vulns = len(report.get("vulnerabilities", []))
        coverage = report.get("coverage", {}) or {}
        row = {
            "job_id": result.job.job_id,
            "target": result.job.describe_target(),
            "status": result.status,
            "attempts": result.attempts,
            "elapsed_seconds": result.elapsed,
            "vulnerable_paths": paths,
            "vulnerabilities": vulns,
            "degraded": coverage.get("degraded", 0),
            "cache": result.cache,
        }
        if result.report is not None:
            row["findings_sha256"] = findings_fingerprint(result.report)
        rows.append(row)
        totals["ok" if result.status == "ok" else "quarantined"] += 1
        totals["vulnerable_paths"] += paths
        totals["vulnerabilities"] += vulns
        totals["summary_hits"] += result.cache.get("summary_hits", 0)
        totals["summary_misses"] += result.cache.get("summary_misses", 0)
        totals["report_cache_hits"] += int(
            bool(result.cache.get("report_cache_hit"))
        )
        totals["cache_corrupt"] += result.cache.get("cache_corrupt", 0)
        totals["fleet_hits"] += result.cache.get("fleet_hits", 0)
        totals["fleet_misses"] += result.cache.get("fleet_misses", 0)
        totals["analyzed_functions"] += coverage.get("analyzed", 0)
        totals["selected_functions"] += coverage.get("selected", 0)
        totals["degraded_functions"] += coverage.get("degraded", 0)
        totals["truncated_summaries"] += coverage.get("truncated", 0)
    lookups = totals["fleet_hits"] + totals["fleet_misses"]
    totals["reuse_ratio"] = (
        round(totals["fleet_hits"] / lookups, 4) if lookups else 0.0
    )
    return {
        "wall_seconds": wall_seconds,
        "totals": totals,
        "images": rows,
    }


def _write_json(path, document):
    """Atomic JSON write: tmp + ``os.replace``.

    Concurrent fleet workers and a mid-write crash can therefore never
    leave a torn ``results.json``/rollup on disk — readers see either
    the previous complete file or the new complete file.  The
    ``results`` fault probe sits between serialisation and the rename,
    modelling a worker dying with the tmp file written but the
    publication step not taken.
    """
    tmp = "%s.tmp.%d" % (path, os.getpid())
    try:
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            faultinject.check("results", os.path.basename(path))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


class ResultsStore:
    """Writes per-image findings and the fleet rollup to a directory.

    All writes are atomic (see :func:`_write_json`)."""

    def __init__(self, out_dir):
        self.out_dir = out_dir
        os.makedirs(os.path.join(out_dir, "images"), exist_ok=True)

    def write_image(self, result):
        """Persist one job's result; returns the path written."""
        # A job id with path separators (e.g. derived from an image
        # path) must not escape the images/ directory — os.path.join
        # silently discards every prefix before an absolute component.
        safe_id = str(result.job.job_id).replace(os.sep, "_").lstrip("_")
        path = os.path.join(
            self.out_dir, "images", "%s.json" % (safe_id or "job")
        )
        return _write_json(path, image_document(result))

    def write_diffcheck(self, triage_dict):
        """Persist a differential sweep's triage report.

        ``triage_dict`` is :meth:`repro.diffcheck.TriageReport.to_dict`
        output: divergence counts, the CI verdict, and one minimized
        reproducer per divergence.  Returns the path written.
        """
        path = os.path.join(self.out_dir, "diffcheck.json")
        return _write_json(path, triage_dict)

    def write_delta(self, delta_doc, name="delta.json"):
        """Persist a version-delta document; returns the path written."""
        path = os.path.join(self.out_dir, name)
        return _write_json(path, delta_doc)

    def write_rollup(self, results, wall_seconds):
        """Persist ``fleet.json`` summarising the whole run."""
        path = os.path.join(self.out_dir, "fleet.json")
        return _write_json(path, rollup_document(results, wall_seconds))
