"""A persistent pool of warm, resource-governed analysis workers.

The original scheduler forked one process per job attempt: perfect
crash isolation, but every attempt paid the full interpreter +
import + intern-pool warm-up cost.  For a long-running service that
cost dominates small jobs, so the pool keeps workers alive between
jobs: a worker loops ``recv job -> execute -> send payload`` over a
duplex pipe until told to stop.

Crash isolation is preserved because isolation never came from the
one-shot lifecycle — it comes from the process boundary.  A worker
that segfaults, ``os._exit``-s, or blows its deadline is *discarded*
(killed and forgotten) and a fresh worker is spawned on demand; only
the job it was holding is affected.  A worker that merely reports a
typed analysis error stays warm and goes back to the idle list.

Two service-grade governors ride on top of the loop:

* **resource limits** — each worker applies ``resource.setrlimit``
  (RLIMIT_AS / RLIMIT_CPU / RLIMIT_FSIZE, from the pool's ``rlimits``
  dict) before serving its first job.  A memory-bomb binary then hits
  ``MemoryError`` inside one function and degrades to a typed
  :class:`~repro.errors.ResourceExhausted` instead of OOM-killing the
  host; CPU exhaustion (``SIGXCPU``) likewise surfaces typed, and the
  worker flags itself for recycling because the CPU clock is
  process-cumulative and cannot be reset.
* **heartbeats** — while executing a job, a sidecar thread sends
  ``{"control": "heartbeat"}`` messages over the same pipe every
  ``heartbeat`` seconds.  The scheduler reaps workers whose beat goes
  silent (process frozen, stopped, or deadlocked in native code)
  independent of the per-job deadline, escalating SIGTERM→SIGKILL.

Within-worker state that persists across jobs is safe by design:

* the hash-consing arenas (:mod:`repro.symexec.value`) are
  content-addressed, so pre-existing interned nodes can never change
  an analysis result, only make it cheaper;
* the phase profiler is read via snapshot deltas
  (:class:`repro.core.detector.DTaint` takes a baseline snapshot), so
  accumulated counters from earlier jobs cancel out;
* fault injectors are installed/uninstalled inside
  :func:`~repro.pipeline.scheduler.execute_job`'s ``try/finally``.

The ``fork`` start method is preferred for the same reason as before:
workers inherit loaded modules and the parent's hash seed.
"""

import gc
import itertools
import multiprocessing
import os
import signal
import threading
import time

from repro.errors import PipelineError, ReproError, ResourceExhausted

_STOP = None        # sentinel message: worker exits its loop

# Grace between the soft RLIMIT_CPU (typed SIGXCPU degradation) and
# the hard limit (kernel SIGKILL): room to report and be recycled.
_CPU_HARD_GRACE = 10

# Set by the SIGXCPU handler: the process burned its CPU budget, so
# the payload asks the supervisor to recycle it after this job.
_CPU_EXHAUSTED = False


def _on_sigxcpu(signum, frame):
    """Soft CPU limit hit: degrade typed instead of dying silently."""
    global _CPU_EXHAUSTED
    _CPU_EXHAUSTED = True
    raise ResourceExhausted(
        "per-worker CPU budget exhausted", resource="cpu"
    )


def apply_rlimits(rlimits):
    """Apply the ``rlimits`` dict to this process; returns what stuck.

    Keys: ``as_mb`` (RLIMIT_AS, MiB), ``cpu_seconds`` (RLIMIT_CPU;
    soft raises SIGXCPU, hard is soft + grace), ``fsize_mb``
    (RLIMIT_FSIZE, MiB).  Limits the kernel refuses (above the hard
    limit of an unprivileged process) are skipped, not fatal — a
    governed worker on a constrained host still starts.
    """
    applied = {}
    if not rlimits:
        return applied
    import resource as _resource

    def _set(name, which, soft, hard):
        try:
            _resource.setrlimit(which, (soft, hard))
            applied[name] = soft
        except (ValueError, OSError):
            pass

    as_mb = rlimits.get("as_mb")
    if as_mb:
        limit = int(as_mb) << 20
        _set("as_bytes", _resource.RLIMIT_AS, limit, limit)
    cpu_seconds = rlimits.get("cpu_seconds")
    if cpu_seconds:
        soft = int(cpu_seconds)
        _set("cpu_seconds", _resource.RLIMIT_CPU, soft,
             soft + _CPU_HARD_GRACE)
        signal.signal(signal.SIGXCPU, _on_sigxcpu)
    fsize_mb = rlimits.get("fsize_mb")
    if fsize_mb:
        limit = int(fsize_mb) << 20
        _set("fsize_bytes", _resource.RLIMIT_FSIZE, limit, limit)
    return applied


class _Heartbeat:
    """Sidecar thread beating over the worker's pipe during jobs."""

    def __init__(self, conn, send_lock, interval):
        self.conn = conn
        self.send_lock = send_lock
        self.interval = interval
        self.busy = threading.Event()
        self.stopped = threading.Event()
        self.thread = None
        if interval and interval > 0:
            self.thread = threading.Thread(
                target=self._run, name="dtaint-heartbeat", daemon=True
            )
            self.thread.start()

    def _run(self):
        while not self.stopped.is_set():
            if not self.busy.wait(0.2):
                continue
            while self.busy.is_set() and not self.stopped.is_set():
                try:
                    with self.send_lock:
                        self.conn.send(
                            {"control": "heartbeat", "ts": time.time()}
                        )
                except (BrokenPipeError, OSError):
                    return
                self.stopped.wait(self.interval)

    def __enter__(self):
        self.busy.set()
        return self

    def __exit__(self, *exc):
        self.busy.clear()

    def stop(self):
        self.stopped.set()
        self.busy.clear()


def _control_reply(message, rlimits_applied):
    """Handle one parent control message; returns the reply payload."""
    command = message[0]
    if command == "ping":
        return {
            "control": "pong",
            "pid": os.getpid(),
            "rlimits": dict(rlimits_applied),
        }
    if command == "attach":
        # Attach a scheduler-published read-only block (see
        # repro.pipeline.sharedstate) into this worker, e.g. the
        # interned-expression arena seed.  Failure is reported, never
        # raised: a worker that cannot attach just builds its own
        # state, exactly as an unshared run would.
        from repro.pipeline import sharedstate

        kind, ref = message[1], message[2]
        ok = False
        if kind == "arena":
            from repro.symexec.value import attach_arena_seed

            ok = sharedstate.attach_once(
                tuple(ref), attach_arena_seed
            ) is not None
        return {"control": "attach", "kind": kind, "ok": bool(ok)}
    if command == "alloc":
        # Diagnostic: try one big allocation under the armed rlimits.
        # Proves the memory governor converts exhaustion to the typed
        # fault without needing a real memory-bomb binary.
        try:
            block = bytearray(int(message[1]))
            size = len(block)
            del block
            return {"control": "alloc", "ok": True, "bytes": size}
        except MemoryError:
            return {
                "control": "alloc", "ok": False,
                "error_type": ResourceExhausted.__name__,
            }
    return {"control": "error", "error": "unknown control %r" % (command,)}


def _pool_worker_main(conn, rlimits=None, heartbeat=0.0,
                      inherited_parent_end=None):
    """Worker process entry: serve jobs until stopped or orphaned."""
    from repro.pipeline.scheduler import execute_job

    if inherited_parent_end is not None:
        # Under the fork start method the child inherits *both* ends
        # of its own pipe.  The copy of the parent end must be closed
        # here, or a worker orphaned by a dead supervisor would keep
        # its own pipe alive and never see the EOF that tells it to
        # exit (chaos kill-9 runs leak worker processes forever).
        inherited_parent_end.close()
    rlimits_applied = apply_rlimits(rlimits)
    send_lock = threading.Lock()
    beat = _Heartbeat(conn, send_lock, heartbeat)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break                    # parent died or closed us: exit
        if message is _STOP:
            break
        collect_after_send = False
        if isinstance(message, tuple) and isinstance(message[0], str):
            payload = _control_reply(message, rlimits_applied)
        else:
            job, attempt, options = message
            # Pool gc policy: the cyclic collector is off for the whole
            # job body and the catch-up collection runs *after* the
            # result is posted.  Analysis allocates millions of mostly
            # acyclic expression nodes, so generational scans during
            # the job are pure overhead — and the one real collection
            # belongs in the worker's idle gap, not on the critical
            # path between "analysis done" and "parent has the result".
            # Reference counting still frees acyclic garbage promptly,
            # so the RLIMIT_AS governor semantics are unchanged.
            collect_after_send = gc.isenabled()
            if collect_after_send:
                gc.disable()
            try:
                with beat:
                    payload = execute_job(job, attempt=attempt, **options)
            except ResourceExhausted as exc:
                payload = {"status": "error", "error": str(exc),
                           "error_type": ResourceExhausted.__name__,
                           "recycle": True}
            except MemoryError:
                # Job-level exhaustion (outside the per-function
                # degradation scope): report typed, then ask to be
                # recycled — the heap high-water mark is suspect.
                payload = {"status": "error",
                           "error": "job exhausted the worker memory "
                                    "limit",
                           "error_type": ResourceExhausted.__name__,
                           "recycle": True}
            except ReproError as exc:
                payload = {"status": "error", "error": str(exc),
                           "error_type": type(exc).__name__}
            except Exception as exc:
                import traceback

                payload = {"status": "error", "error": str(exc),
                           "error_type": type(exc).__name__,
                           "traceback": traceback.format_exc()}
        if _CPU_EXHAUSTED:
            payload["recycle"] = True
        try:
            with send_lock:
                conn.send(payload)
        except (BrokenPipeError, OSError):
            break
        if collect_after_send:
            gc.enable()
            gc.collect()
    beat.stop()
    conn.close()


class PoolWorker:
    """One live worker process + its duplex command/result pipe."""

    __slots__ = ("process", "conn", "worker_id", "jobs_done")

    def __init__(self, process, conn, worker_id):
        self.process = process
        self.conn = conn
        self.worker_id = worker_id
        self.jobs_done = 0

    @property
    def pid(self):
        return self.process.pid

    def send_job(self, job, attempt, options):
        self.conn.send((job, attempt, options))

    def control(self, *message, timeout=10.0):
        """Round-trip one control message (``ping`` / ``alloc``).

        Only valid while the worker is idle (no job in flight on the
        pipe).  Heartbeat frames that race the reply are skipped.
        """
        self.conn.send(tuple(message))
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not self.conn.poll(0.1):
                continue
            payload = self.conn.recv()
            if payload.get("control") == "heartbeat":
                continue
            return payload
        raise PipelineError(
            "worker %d did not answer %r" % (self.worker_id, message)
        )

    def kill(self):
        """Terminate escalating SIGTERM -> SIGKILL; close the pipe."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(0.5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(5)


class WorkerPool:
    """Spawns, recycles, and reaps warm analysis workers.

    ``acquire()`` hands out an idle warm worker when one exists and
    forks a new one otherwise; the *caller* bounds concurrency (the
    scheduler never holds more workers than its slot count), so the
    pool itself imposes no cap.  ``release()`` returns a healthy
    worker to the idle list; ``discard()`` destroys a worker whose
    process can no longer be trusted (crash, timeout, torn pipe).

    ``max_jobs_per_worker`` optionally recycles a worker after N jobs
    — a blunt but effective bound on slow per-process growth (intern
    arenas, RSS high-water) during very long daemon runs.  0 disables
    recycling.

    ``rlimits`` (``{"as_mb": .., "cpu_seconds": .., "fsize_mb": ..}``)
    is applied inside every spawned worker; ``heartbeat`` > 0 starts
    the per-worker heartbeat sidecar at that interval in seconds.
    """

    def __init__(self, ctx=None, max_jobs_per_worker=0, rlimits=None,
                 heartbeat=0.0):
        if ctx is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
        self._ctx = ctx
        self.max_jobs_per_worker = max(int(max_jobs_per_worker or 0), 0)
        self.rlimits = dict(rlimits) if rlimits else None
        self.heartbeat = max(float(heartbeat or 0.0), 0.0)
        self._idle = []
        self._ids = itertools.count(1)
        self.spawned_total = 0
        self.recycled_total = 0
        self.discarded_total = 0
        self._closed = False
        # (kind, ref) tuples of published read-only blocks every
        # worker should attach — replayed into each new spawn.
        self.shared_refs = []

    # ------------------------------------------------------------------

    def acquire(self):
        """An idle warm worker, or a freshly spawned one."""
        if self._closed:
            raise PipelineError("worker pool is closed")
        while self._idle:
            worker = self._idle.pop()
            if worker.process.is_alive():
                return worker
            # Died while idle (OOM killer, operator): silently replace.
            worker.kill()
            self.discarded_total += 1
        return self._spawn()

    def release(self, worker):
        """Return a healthy worker to the warm idle list."""
        worker.jobs_done += 1
        if (self.max_jobs_per_worker
                and worker.jobs_done >= self.max_jobs_per_worker):
            self._stop(worker)
            self.recycled_total += 1
            return
        if self._closed or not worker.process.is_alive():
            worker.kill()
            self.discarded_total += 1
            return
        self._idle.append(worker)

    def recycle(self, worker):
        """Retire a spent-but-cooperative worker (resource budget gone).

        Unlike :meth:`discard` this is an orderly stop counted as a
        recycle: the worker asked for it (CPU clock burned, heap
        high-water suspect), it did nothing untrustworthy.
        """
        self._stop(worker)
        self.recycled_total += 1

    def discard(self, worker):
        """Destroy a worker whose process is no longer trustworthy."""
        worker.kill()
        self.discarded_total += 1

    @property
    def warm_count(self):
        return len(self._idle)

    def share(self, kind, ref):
        """Announce a published read-only block to the whole pool.

        Idle workers attach immediately over their control channel;
        every future spawn attaches right after start.  Workers busy
        at announcement time pick the block up from the ref each shard
        task carries — the worker-side memo in
        :mod:`repro.pipeline.sharedstate` makes the repeat free.
        """
        ref = tuple(ref)
        self.shared_refs.append((kind, ref))
        for worker in list(self._idle):
            try:
                worker.control("attach", kind, ref, timeout=5.0)
            except (PipelineError, OSError, EOFError):
                pass     # attach is best-effort; the worker stays usable

    def prewarm(self, count):
        """Fork ``count`` idle workers ahead of the first job."""
        need = max(count - len(self._idle), 0)
        for _ in range(need):
            self._idle.append(self._spawn())

    def close(self):
        """Stop every idle worker; the pool refuses further acquires."""
        self._closed = True
        while self._idle:
            self._stop(self._idle.pop())

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------

    def _spawn(self):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_id = next(self._ids)
        # Under fork, hand the worker its copy of the parent end so it
        # can close it (see _pool_worker_main); under spawn the fd is
        # not inherited and Connections don't pickle, so pass nothing.
        forked = self._ctx.get_start_method() == "fork"
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self.rlimits, self.heartbeat,
                  parent_conn if forked else None),
            name="dtaint-worker-%d" % worker_id,
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.spawned_total += 1
        worker = PoolWorker(process, parent_conn, worker_id)
        for kind, ref in self.shared_refs:
            try:
                worker.control("attach", kind, ref, timeout=5.0)
            except (PipelineError, OSError, EOFError):
                break
        return worker

    def _stop(self, worker):
        """Ask a worker to exit its loop, then make sure it did."""
        try:
            worker.conn.send(_STOP)
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(2)
        worker.kill()
