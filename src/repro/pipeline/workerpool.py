"""A persistent pool of warm analysis worker processes.

The original scheduler forked one process per job attempt: perfect
crash isolation, but every attempt paid the full interpreter +
import + intern-pool warm-up cost.  For a long-running service that
cost dominates small jobs, so the pool keeps workers alive between
jobs: a worker loops ``recv job -> execute -> send payload`` over a
duplex pipe until told to stop.

Crash isolation is preserved because isolation never came from the
one-shot lifecycle — it comes from the process boundary.  A worker
that segfaults, ``os._exit``-s, or blows its deadline is *discarded*
(killed and forgotten) and a fresh worker is spawned on demand; only
the job it was holding is affected.  A worker that merely reports a
typed analysis error stays warm and goes back to the idle list.

Within-worker state that persists across jobs is safe by design:

* the hash-consing arenas (:mod:`repro.symexec.value`) are
  content-addressed, so pre-existing interned nodes can never change
  an analysis result, only make it cheaper;
* the phase profiler is read via snapshot deltas
  (:class:`repro.core.detector.DTaint` takes a baseline snapshot), so
  accumulated counters from earlier jobs cancel out;
* fault injectors are installed/uninstalled inside
  :func:`~repro.pipeline.scheduler.execute_job`'s ``try/finally``.

The ``fork`` start method is preferred for the same reason as before:
workers inherit loaded modules and the parent's hash seed.
"""

import itertools
import multiprocessing

from repro.errors import PipelineError, ReproError

_STOP = None        # sentinel message: worker exits its loop


def _pool_worker_main(conn):
    """Worker process entry: serve jobs until stopped or orphaned."""
    from repro.pipeline.scheduler import execute_job

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break                    # parent died or closed us: exit
        if message is _STOP:
            break
        job, attempt, options = message
        try:
            payload = execute_job(job, attempt=attempt, **options)
        except ReproError as exc:
            payload = {"status": "error", "error": str(exc),
                       "error_type": type(exc).__name__}
        except Exception as exc:
            import traceback

            payload = {"status": "error", "error": str(exc),
                       "error_type": type(exc).__name__,
                       "traceback": traceback.format_exc()}
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class PoolWorker:
    """One live worker process + its duplex command/result pipe."""

    __slots__ = ("process", "conn", "worker_id", "jobs_done")

    def __init__(self, process, conn, worker_id):
        self.process = process
        self.conn = conn
        self.worker_id = worker_id
        self.jobs_done = 0

    @property
    def pid(self):
        return self.process.pid

    def send_job(self, job, attempt, options):
        self.conn.send((job, attempt, options))

    def kill(self):
        """Terminate escalating SIGTERM -> SIGKILL; close the pipe."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(0.5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(5)


class WorkerPool:
    """Spawns, recycles, and reaps warm analysis workers.

    ``acquire()`` hands out an idle warm worker when one exists and
    forks a new one otherwise; the *caller* bounds concurrency (the
    scheduler never holds more workers than its slot count), so the
    pool itself imposes no cap.  ``release()`` returns a healthy
    worker to the idle list; ``discard()`` destroys a worker whose
    process can no longer be trusted (crash, timeout, torn pipe).

    ``max_jobs_per_worker`` optionally recycles a worker after N jobs
    — a blunt but effective bound on slow per-process growth (intern
    arenas, RSS high-water) during very long daemon runs.  0 disables
    recycling.
    """

    def __init__(self, ctx=None, max_jobs_per_worker=0):
        if ctx is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
        self._ctx = ctx
        self.max_jobs_per_worker = max(int(max_jobs_per_worker or 0), 0)
        self._idle = []
        self._ids = itertools.count(1)
        self.spawned_total = 0
        self.recycled_total = 0
        self.discarded_total = 0
        self._closed = False

    # ------------------------------------------------------------------

    def acquire(self):
        """An idle warm worker, or a freshly spawned one."""
        if self._closed:
            raise PipelineError("worker pool is closed")
        while self._idle:
            worker = self._idle.pop()
            if worker.process.is_alive():
                return worker
            # Died while idle (OOM killer, operator): silently replace.
            worker.kill()
            self.discarded_total += 1
        return self._spawn()

    def release(self, worker):
        """Return a healthy worker to the warm idle list."""
        worker.jobs_done += 1
        if (self.max_jobs_per_worker
                and worker.jobs_done >= self.max_jobs_per_worker):
            self._stop(worker)
            self.recycled_total += 1
            return
        if self._closed or not worker.process.is_alive():
            worker.kill()
            self.discarded_total += 1
            return
        self._idle.append(worker)

    def discard(self, worker):
        """Destroy a worker whose process is no longer trustworthy."""
        worker.kill()
        self.discarded_total += 1

    @property
    def warm_count(self):
        return len(self._idle)

    def prewarm(self, count):
        """Fork ``count`` idle workers ahead of the first job."""
        need = max(count - len(self._idle), 0)
        for _ in range(need):
            self._idle.append(self._spawn())

    def close(self):
        """Stop every idle worker; the pool refuses further acquires."""
        self._closed = True
        while self._idle:
            self._stop(self._idle.pop())

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------

    def _spawn(self):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_id = next(self._ids)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn,),
            name="dtaint-worker-%d" % worker_id,
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.spawned_total += 1
        return PoolWorker(process, parent_conn, worker_id)

    def _stop(self, worker):
        """Ask a worker to exit its loop, then make sure it did."""
        try:
            worker.conn.send(_STOP)
        except (BrokenPipeError, OSError):
            pass
        worker.process.join(2)
        worker.kill()
