"""The durable job queue over the sqlite results store.

Jobs move ``pending → running → done | failed``, with ``cancelled``
reachable from ``pending`` (and *requested* on a running job, which
the daemon honours at the next safe point) and ``dead`` — the
**dead-letter** state — reachable from any failure path.  Everything
is one table (``queue_jobs`` in :mod:`repro.service.store`), so the
queue survives daemon restarts for free: on start-up
:meth:`JobQueue.recover` sweeps jobs stranded in ``running`` by a
crash back to ``pending``.

Submission is **idempotent**: every job carries a ``dedup_key``
derived from the image fingerprint (file content hash for on-disk
ELFs, build recipe for synthetic profiles) plus the analysis-config
fingerprint.  Submitting the same work twice returns the first job —
live or already finished — instead of scanning again; a *failed* or
*cancelled* job is revived to ``pending`` so resubmission is also the
retry knob.

Poison-job containment is two independent, both persistent, layers:

* **retry budget** — ``attempts`` lives in the job row, so it counts
  across daemon restarts; a job that has burned ``max_attempts``
  moves to ``dead`` instead of ``failed`` and resubmission does *not*
  revive it (only an explicit :meth:`retry_dead` does).
* **per-image circuit breaker** — process-killing failure modes
  (worker crash / stall / timeout, or a daemon death with the job in
  flight) increment a crash counter keyed by the image's
  ``dedup_key`` in the ``image_quarantine`` table.  At
  ``crash_threshold`` the fingerprint is quarantined: its jobs go to
  ``dead``, :meth:`claim_batch` refuses to dispatch it, and
  resubmission reports ``'quarantined'`` until an operator calls
  :meth:`reset_quarantine`.

Claiming is priority-ordered (higher first, FIFO within a priority)
and transactional, so concurrent dispatchers can never double-claim.
"""

import hashlib
import json
import time

from repro.errors import PipelineError

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
DEAD = "dead"

STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED, DEAD)
TERMINAL_STATES = (DONE, FAILED, CANCELLED, DEAD)

# Failure modes that indicate the *image* kills processes (rather
# than merely failing analysis): these feed the circuit breaker.
POISON_ERROR_TYPES = (
    "WorkerCrash", "WorkerStalled", "AnalysisTimeout", "DaemonCrash",
)

DEFAULT_MAX_ATTEMPTS = 5
DEFAULT_CRASH_THRESHOLD = 3

_SPEC_FIELDS = ("kind", "key", "path", "scale", "modules", "member",
                "alias_engine")


def job_spec(kind, key="", path="", scale=0.25, modules=(), shards=0,
             member="", alias_engine="dtaint"):
    """A normalised job-submission spec (the queue's unit of work).

    ``shards`` requests intra-image shard scheduling (0 = unsharded,
    -1 = auto, N>1 = at most N shards).  It is deliberately *not* part
    of the dedup identity (``_SPEC_FIELDS``): sharding changes how an
    image is scheduled, never what its findings are.  ``member`` (for
    ``kind='firmware'``) names one extracted ELF inside the image and
    *is* identity: two members of one image are two units of work.
    ``alias_engine`` *is* identity — the engines produce different
    findings, so one image under two engines is two units of work.
    """
    from repro.alias.base import ENGINE_NAMES

    if kind not in ("profile", "elf", "firmware"):
        raise PipelineError("unknown job kind %r" % kind)
    if kind == "profile" and not key:
        raise PipelineError("profile jobs need a profile key")
    if kind in ("elf", "firmware") and not path:
        raise PipelineError("%s jobs need a file path" % kind)
    if member and kind != "firmware":
        raise PipelineError("member selection needs kind='firmware'")
    alias_engine = alias_engine or "dtaint"
    if alias_engine not in ENGINE_NAMES:
        raise PipelineError(
            "unknown alias engine %r (expected one of %s)"
            % (alias_engine, ", ".join(ENGINE_NAMES))
        )
    return {
        "kind": kind,
        "key": key,
        "path": path,
        "scale": float(scale),
        "modules": sorted(modules or ()),
        "shards": int(shards or 0),
        "member": member,
        "alias_engine": alias_engine,
    }


def dedup_key(spec, config_fingerprint=""):
    """Image fingerprint + config fingerprint → idempotency key.

    For on-disk ELF jobs the image fingerprint is the file's content
    hash, so resubmitting an unchanged file dedups while a rebuilt
    binary at the same path queues fresh work.  Synthetic profile
    builds are deterministic in ``(key, scale)``, which therefore *is*
    their image fingerprint.
    """
    fields = {name: spec.get(name) for name in _SPEC_FIELDS}
    # Specs persisted before the engine field existed ran the default.
    fields["alias_engine"] = spec.get("alias_engine") or "dtaint"
    if spec.get("kind") in ("elf", "firmware"):
        # Firmware members hash the whole image: a re-packed image at
        # the same path queues fresh work for every member.
        try:
            with open(spec["path"], "rb") as handle:
                fields["content_sha256"] = hashlib.sha256(
                    handle.read()
                ).hexdigest()
        except OSError:
            pass                     # missing file fails at run time
    if not config_fingerprint:
        from repro.core import DTaintConfig
        from repro.pipeline.cache import report_fingerprint

        config_fingerprint = report_fingerprint(
            DTaintConfig(
                modules=tuple(spec.get("modules") or ()),
                alias_engine=spec.get("alias_engine") or "dtaint",
            )
        )
    fields["config"] = config_fingerprint
    blob = json.dumps(fields, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class JobQueue:
    """Durable, priority-ordered, idempotent job queue with poison
    containment (dead-letter state + per-image circuit breaker)."""

    def __init__(self, db, max_attempts=DEFAULT_MAX_ATTEMPTS,
                 crash_threshold=DEFAULT_CRASH_THRESHOLD):
        self.db = db
        self.max_attempts = max(int(max_attempts), 1)
        self.crash_threshold = max(int(crash_threshold), 1)

    # -- submission --------------------------------------------------------

    def submit(self, spec, priority=0, key=None):
        """Enqueue a job; returns ``(job_id, outcome)``.

        ``outcome`` is ``'created'`` for new work, ``'deduplicated'``
        when an equivalent job is pending/running/done, ``'revived'``
        when a failed/cancelled job went back to pending, and
        ``'quarantined'`` when the image is dead-lettered — the job is
        *not* requeued until an operator intervenes
        (:meth:`retry_dead` / :meth:`reset_quarantine`).
        """
        key = key or dedup_key(spec)
        with self.db._transaction() as conn:
            row = conn.execute(
                "SELECT job_id, state FROM queue_jobs WHERE dedup_key = ?",
                (key,),
            ).fetchone()
            if row is None:
                if self._is_quarantined(conn, key):
                    raise PipelineError(
                        "image fingerprint %s is quarantined" % key[:16]
                    )
                cursor = conn.execute(
                    "INSERT INTO queue_jobs(dedup_key, spec_json, "
                    "priority, state, submitted_ts) VALUES (?, ?, ?, ?, ?)",
                    (key, json.dumps(spec, sort_keys=True), int(priority),
                     PENDING, time.time()),
                )
                return cursor.lastrowid, "created"
            if row["state"] == DEAD:
                return row["job_id"], "quarantined"
            if row["state"] in (FAILED, CANCELLED):
                conn.execute(
                    "UPDATE queue_jobs SET state = ?, priority = ?, "
                    "cancel_requested = 0, submitted_ts = ?, "
                    "started_ts = NULL, finished_ts = NULL, error = '', "
                    "error_type = '', attempts = 0 WHERE job_id = ?",
                    (PENDING, int(priority), time.time(), row["job_id"]),
                )
                return row["job_id"], "revived"
            return row["job_id"], "deduplicated"

    # -- dispatch ----------------------------------------------------------

    def claim_batch(self, limit=1):
        """Atomically move up to ``limit`` pending jobs to running.

        Quarantined image fingerprints are never dispatched, even if a
        pending row slipped in before the breaker tripped.
        """
        with self.db._transaction() as conn:
            rows = conn.execute(
                "SELECT q.* FROM queue_jobs q "
                "LEFT JOIN image_quarantine iq ON iq.dedup_key = "
                "q.dedup_key AND iq.quarantined = 1 "
                "WHERE q.state = ? AND q.cancel_requested = 0 "
                "AND iq.dedup_key IS NULL "
                "ORDER BY q.priority DESC, q.job_id LIMIT ?",
                (PENDING, int(limit)),
            ).fetchall()
            now = time.time()
            claimed = []
            for row in rows:
                conn.execute(
                    "UPDATE queue_jobs SET state = ?, started_ts = ?, "
                    "attempts = attempts + 1 WHERE job_id = ?",
                    (RUNNING, now, row["job_id"]),
                )
                claimed.append(self._as_dict(row, state=RUNNING))
        return claimed

    def complete(self, job_id, image_id=None):
        with self.db._transaction() as conn:
            self.finish_in(conn, job_id, DONE, image_id=image_id)

    def fail(self, job_id, error="", error_type=""):
        with self.db._transaction() as conn:
            self.finish_in(conn, job_id, FAILED, error=error,
                           error_type=error_type)

    def finish_in(self, conn, job_id, state, image_id=None, error="",
                  error_type=""):
        """Apply one job's terminal disposition inside an open
        transaction (the daemon folds these into the same transaction
        that publishes the batch's results); returns the state the job
        actually landed in (a failure may escalate to ``dead``).
        """
        if state == FAILED:
            row = conn.execute(
                "SELECT dedup_key, attempts FROM queue_jobs "
                "WHERE job_id = ?", (int(job_id),),
            ).fetchone()
            if row is not None:
                tripped = False
                if error_type in POISON_ERROR_TYPES:
                    tripped = self._record_crash(
                        conn, row["dedup_key"], error_type
                    )
                if tripped or row["attempts"] >= self.max_attempts:
                    state = DEAD
        conn.execute(
            "UPDATE queue_jobs SET state = ?, finished_ts = ?, "
            "image_id = COALESCE(?, image_id), error = ?, "
            "error_type = ? WHERE job_id = ?",
            (state, time.time(), image_id, error, error_type,
             int(job_id)),
        )
        return state

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id):
        """Cancel a job; returns the resulting disposition.

        ``'cancelled'`` — it was pending and will never run;
        ``'cancel_requested'`` — it is running, the daemon will not
        re-dispatch it but the in-flight attempt completes;
        ``'already_terminal'`` / ``'missing'`` otherwise.
        """
        with self.db._transaction() as conn:
            row = conn.execute(
                "SELECT state FROM queue_jobs WHERE job_id = ?",
                (int(job_id),),
            ).fetchone()
            if row is None:
                return "missing"
            if row["state"] == PENDING:
                conn.execute(
                    "UPDATE queue_jobs SET state = ?, finished_ts = ?, "
                    "cancel_requested = 1 WHERE job_id = ?",
                    (CANCELLED, time.time(), int(job_id)),
                )
                return "cancelled"
            if row["state"] == RUNNING:
                conn.execute(
                    "UPDATE queue_jobs SET cancel_requested = 1 "
                    "WHERE job_id = ?", (int(job_id),),
                )
                return "cancel_requested"
            return "already_terminal"

    # -- recovery ----------------------------------------------------------

    def recover(self):
        """Requeue jobs a dead daemon left in ``running``; returns n.

        A job found ``running`` at start-up was in flight when the
        previous daemon died — that counts as one crash signal against
        its image fingerprint (the breaker is how a reliably
        daemon-killing image eventually stops being retried), and the
        cross-restart attempt budget applies: over budget or over the
        crash threshold, the job dead-letters instead of requeueing.
        """
        with self.db._transaction() as conn:
            rows = conn.execute(
                "SELECT job_id, dedup_key, attempts FROM queue_jobs "
                "WHERE state = ?", (RUNNING,),
            ).fetchall()
            requeued = 0
            for row in rows:
                tripped = self._record_crash(
                    conn, row["dedup_key"], "DaemonCrash"
                )
                if tripped or row["attempts"] >= self.max_attempts:
                    conn.execute(
                        "UPDATE queue_jobs SET state = ?, finished_ts = ?,"
                        " error = ?, error_type = ? WHERE job_id = ?",
                        (DEAD, time.time(),
                         "daemon died while job was in flight",
                         "DaemonCrash", row["job_id"]),
                    )
                else:
                    conn.execute(
                        "UPDATE queue_jobs SET state = ?, "
                        "started_ts = NULL WHERE job_id = ?",
                        (PENDING, row["job_id"]),
                    )
                    requeued += 1
            return requeued

    # -- dead-letter / quarantine operations -------------------------------

    def dead_letter(self, limit=200):
        """The dead-letter queue: jobs needing operator attention."""
        jobs = self.list_jobs(state=DEAD, limit=limit)
        breaker = {
            row["dedup_key"]: row for row in self.quarantined_images()
        }
        for job in jobs:
            info = breaker.get(job["dedup_key"])
            job["crash_count"] = info["crash_count"] if info else 0
            job["quarantined"] = bool(info and info["quarantined"])
        return jobs

    def retry_dead(self, job_id):
        """Give one dead-lettered job a fresh budget; returns outcome.

        Resets the attempt counter *and* the image's circuit breaker —
        an operator retrying a dead job has decided the image deserves
        another chance (say, after a daemon bug was fixed).
        """
        with self.db._transaction() as conn:
            row = conn.execute(
                "SELECT state, dedup_key FROM queue_jobs WHERE job_id = ?",
                (int(job_id),),
            ).fetchone()
            if row is None:
                return "missing"
            if row["state"] != DEAD:
                return "not_dead"
            conn.execute(
                "UPDATE queue_jobs SET state = ?, attempts = 0, "
                "cancel_requested = 0, submitted_ts = ?, "
                "started_ts = NULL, finished_ts = NULL, error = '', "
                "error_type = '' WHERE job_id = ?",
                (PENDING, time.time(), int(job_id)),
            )
            conn.execute(
                "DELETE FROM image_quarantine WHERE dedup_key = ?",
                (row["dedup_key"],),
            )
            return "requeued"

    def reset_quarantine(self, dedup_key):
        """Clear one image fingerprint's circuit breaker; returns n."""
        with self.db._transaction() as conn:
            cursor = conn.execute(
                "DELETE FROM image_quarantine WHERE dedup_key = ?",
                (dedup_key,),
            )
            return cursor.rowcount

    def quarantined_images(self):
        """Every fingerprint the breaker is tracking (crashes ≥ 1)."""
        with self.db._lock:
            rows = self.db._conn.execute(
                "SELECT * FROM image_quarantine ORDER BY updated_ts DESC"
            ).fetchall()
        return [{key: row[key] for key in row.keys()} for row in rows]

    def _record_crash(self, conn, dedup_key, error_type):
        """Count one crash against an image; True if the breaker trips."""
        now = time.time()
        conn.execute(
            "INSERT INTO image_quarantine(dedup_key, crash_count, "
            "last_error_type, updated_ts) VALUES (?, 1, ?, ?) "
            "ON CONFLICT(dedup_key) DO UPDATE SET "
            "crash_count = crash_count + 1, "
            "last_error_type = excluded.last_error_type, "
            "updated_ts = excluded.updated_ts",
            (dedup_key, error_type, now),
        )
        row = conn.execute(
            "SELECT crash_count FROM image_quarantine WHERE dedup_key = ?",
            (dedup_key,),
        ).fetchone()
        if row["crash_count"] >= self.crash_threshold:
            conn.execute(
                "UPDATE image_quarantine SET quarantined = 1 "
                "WHERE dedup_key = ?", (dedup_key,),
            )
            return True
        return False

    @staticmethod
    def _is_quarantined(conn, dedup_key):
        row = conn.execute(
            "SELECT quarantined FROM image_quarantine WHERE dedup_key = ?",
            (dedup_key,),
        ).fetchone()
        return bool(row and row["quarantined"])

    # -- introspection -----------------------------------------------------

    def get(self, job_id):
        with self.db._lock:
            row = self.db._conn.execute(
                "SELECT * FROM queue_jobs WHERE job_id = ?",
                (int(job_id),),
            ).fetchone()
        return self._as_dict(row) if row is not None else None

    def list_jobs(self, state=None, limit=200):
        clauses, params = [], []
        if state:
            clauses.append("state = ?")
            params.append(state)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        params.append(int(limit))
        with self.db._lock:
            rows = self.db._conn.execute(
                "SELECT * FROM queue_jobs" + where
                + " ORDER BY job_id DESC LIMIT ?", params,
            ).fetchall()
        return [self._as_dict(row) for row in rows]

    def counts(self):
        with self.db._lock:
            rows = self.db._conn.execute(
                "SELECT state, COUNT(*) AS n FROM queue_jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: row["n"] for row in rows})
        return counts

    def depth(self):
        """Jobs waiting or in flight: the backpressure signal."""
        with self.db._lock:
            row = self.db._conn.execute(
                "SELECT COUNT(*) AS n FROM queue_jobs WHERE state IN "
                "(?, ?)", (PENDING, RUNNING),
            ).fetchone()
        return row["n"]

    @staticmethod
    def _as_dict(row, **overrides):
        job = {key: row[key] for key in row.keys()}
        job["spec"] = json.loads(job.pop("spec_json"))
        job["cancel_requested"] = bool(job["cancel_requested"])
        job.update(overrides)
        return job
