"""The durable job queue over the sqlite results store.

Jobs move ``pending → running → done | failed``, with ``cancelled``
reachable from ``pending`` (and *requested* on a running job, which
the daemon honours at the next safe point).  Everything is one table
(``queue_jobs`` in :mod:`repro.service.store`), so the queue survives
daemon restarts for free: on start-up :meth:`JobQueue.recover` sweeps
jobs stranded in ``running`` by a crash back to ``pending``.

Submission is **idempotent**: every job carries a ``dedup_key``
derived from the image fingerprint (file content hash for on-disk
ELFs, build recipe for synthetic profiles) plus the analysis-config
fingerprint.  Submitting the same work twice returns the first job —
live or already finished — instead of scanning again; a *failed* or
*cancelled* job is revived to ``pending`` so resubmission is also the
retry knob.

Claiming is priority-ordered (higher first, FIFO within a priority)
and transactional, so concurrent dispatchers can never double-claim.
"""

import hashlib
import json
import time

from repro.errors import PipelineError

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

_SPEC_FIELDS = ("kind", "key", "path", "scale", "modules")


def job_spec(kind, key="", path="", scale=0.25, modules=()):
    """A normalised job-submission spec (the queue's unit of work)."""
    if kind not in ("profile", "elf"):
        raise PipelineError("unknown job kind %r" % kind)
    if kind == "profile" and not key:
        raise PipelineError("profile jobs need a profile key")
    if kind == "elf" and not path:
        raise PipelineError("elf jobs need a file path")
    return {
        "kind": kind,
        "key": key,
        "path": path,
        "scale": float(scale),
        "modules": sorted(modules or ()),
    }


def dedup_key(spec, config_fingerprint=""):
    """Image fingerprint + config fingerprint → idempotency key.

    For on-disk ELF jobs the image fingerprint is the file's content
    hash, so resubmitting an unchanged file dedups while a rebuilt
    binary at the same path queues fresh work.  Synthetic profile
    builds are deterministic in ``(key, scale)``, which therefore *is*
    their image fingerprint.
    """
    fields = {name: spec.get(name) for name in _SPEC_FIELDS}
    if spec.get("kind") == "elf":
        try:
            with open(spec["path"], "rb") as handle:
                fields["content_sha256"] = hashlib.sha256(
                    handle.read()
                ).hexdigest()
        except OSError:
            pass                     # missing file fails at run time
    if not config_fingerprint:
        from repro.core import DTaintConfig
        from repro.pipeline.cache import report_fingerprint

        config_fingerprint = report_fingerprint(
            DTaintConfig(modules=tuple(spec.get("modules") or ()))
        )
    fields["config"] = config_fingerprint
    blob = json.dumps(fields, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class JobQueue:
    """Durable, priority-ordered, idempotent job queue."""

    def __init__(self, db):
        self.db = db

    # -- submission --------------------------------------------------------

    def submit(self, spec, priority=0, key=None):
        """Enqueue a job; returns ``(job_id, outcome)``.

        ``outcome`` is ``'created'`` for new work, ``'deduplicated'``
        when an equivalent job is pending/running/done, and
        ``'revived'`` when a failed/cancelled job went back to
        pending.
        """
        key = key or dedup_key(spec)
        with self.db._transaction() as conn:
            row = conn.execute(
                "SELECT job_id, state FROM queue_jobs WHERE dedup_key = ?",
                (key,),
            ).fetchone()
            if row is None:
                cursor = conn.execute(
                    "INSERT INTO queue_jobs(dedup_key, spec_json, "
                    "priority, state, submitted_ts) VALUES (?, ?, ?, ?, ?)",
                    (key, json.dumps(spec, sort_keys=True), int(priority),
                     PENDING, time.time()),
                )
                return cursor.lastrowid, "created"
            if row["state"] in (FAILED, CANCELLED):
                conn.execute(
                    "UPDATE queue_jobs SET state = ?, priority = ?, "
                    "cancel_requested = 0, submitted_ts = ?, "
                    "started_ts = NULL, finished_ts = NULL, error = '', "
                    "error_type = '' WHERE job_id = ?",
                    (PENDING, int(priority), time.time(), row["job_id"]),
                )
                return row["job_id"], "revived"
            return row["job_id"], "deduplicated"

    # -- dispatch ----------------------------------------------------------

    def claim_batch(self, limit=1):
        """Atomically move up to ``limit`` pending jobs to running."""
        with self.db._transaction() as conn:
            rows = conn.execute(
                "SELECT * FROM queue_jobs WHERE state = ? AND "
                "cancel_requested = 0 "
                "ORDER BY priority DESC, job_id LIMIT ?",
                (PENDING, int(limit)),
            ).fetchall()
            now = time.time()
            claimed = []
            for row in rows:
                conn.execute(
                    "UPDATE queue_jobs SET state = ?, started_ts = ?, "
                    "attempts = attempts + 1 WHERE job_id = ?",
                    (RUNNING, now, row["job_id"]),
                )
                claimed.append(self._as_dict(row, state=RUNNING))
        return claimed

    def complete(self, job_id, image_id=None):
        self._finish(job_id, DONE, image_id=image_id)

    def fail(self, job_id, error="", error_type=""):
        self._finish(job_id, FAILED, error=error, error_type=error_type)

    def _finish(self, job_id, state, image_id=None, error="",
                error_type=""):
        with self.db._transaction() as conn:
            conn.execute(
                "UPDATE queue_jobs SET state = ?, finished_ts = ?, "
                "image_id = COALESCE(?, image_id), error = ?, "
                "error_type = ? WHERE job_id = ?",
                (state, time.time(), image_id, error, error_type,
                 int(job_id)),
            )

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id):
        """Cancel a job; returns the resulting disposition.

        ``'cancelled'`` — it was pending and will never run;
        ``'cancel_requested'`` — it is running, the daemon will not
        re-dispatch it but the in-flight attempt completes;
        ``'already_terminal'`` / ``'missing'`` otherwise.
        """
        with self.db._transaction() as conn:
            row = conn.execute(
                "SELECT state FROM queue_jobs WHERE job_id = ?",
                (int(job_id),),
            ).fetchone()
            if row is None:
                return "missing"
            if row["state"] == PENDING:
                conn.execute(
                    "UPDATE queue_jobs SET state = ?, finished_ts = ?, "
                    "cancel_requested = 1 WHERE job_id = ?",
                    (CANCELLED, time.time(), int(job_id)),
                )
                return "cancelled"
            if row["state"] == RUNNING:
                conn.execute(
                    "UPDATE queue_jobs SET cancel_requested = 1 "
                    "WHERE job_id = ?", (int(job_id),),
                )
                return "cancel_requested"
            return "already_terminal"

    # -- recovery ----------------------------------------------------------

    def recover(self):
        """Requeue jobs a dead daemon left in ``running``; returns n."""
        with self.db._transaction() as conn:
            cursor = conn.execute(
                "UPDATE queue_jobs SET state = ?, started_ts = NULL "
                "WHERE state = ?", (PENDING, RUNNING),
            )
            return cursor.rowcount

    # -- introspection -----------------------------------------------------

    def get(self, job_id):
        with self.db._lock:
            row = self.db._conn.execute(
                "SELECT * FROM queue_jobs WHERE job_id = ?",
                (int(job_id),),
            ).fetchone()
        return self._as_dict(row) if row is not None else None

    def list_jobs(self, state=None, limit=200):
        clauses, params = [], []
        if state:
            clauses.append("state = ?")
            params.append(state)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        params.append(int(limit))
        with self.db._lock:
            rows = self.db._conn.execute(
                "SELECT * FROM queue_jobs" + where
                + " ORDER BY job_id DESC LIMIT ?", params,
            ).fetchall()
        return [self._as_dict(row) for row in rows]

    def counts(self):
        with self.db._lock:
            rows = self.db._conn.execute(
                "SELECT state, COUNT(*) AS n FROM queue_jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in STATES}
        counts.update({row["state"]: row["n"] for row in rows})
        return counts

    @staticmethod
    def _as_dict(row, **overrides):
        job = {key: row[key] for key in row.keys()}
        job["spec"] = json.loads(job.pop("spec_json"))
        job["cancel_requested"] = bool(job["cancel_requested"])
        job.update(overrides)
        return job
