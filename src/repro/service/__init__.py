"""DTaint-as-a-service: the persistent analysis daemon.

The paper's fleet (1,463 firmware images, 3.8M functions) is a
sustained workload, not a one-shot CLI run.  This package turns the
pipeline into a long-running service:

* :mod:`repro.service.store` — ResultsStore v2: one WAL-mode sqlite
  file holding runs, per-image canonical findings (indexed), coverage,
  auxiliary documents, the durable job queue and the mirrored
  telemetry stream; lossless migration to/from the JSON layout;
* :mod:`repro.service.queue` — the durable queue: priorities,
  idempotent submission keyed by image+config fingerprint, crash-safe
  resume;
* :mod:`repro.service.daemon` — the orchestration core: a dispatcher
  thread feeding the persistent warm worker pool and publishing each
  batch transactionally;
* :mod:`repro.service.api` — the REST/JSON frontend (stdlib
  ``http.server``);
* :mod:`repro.service.client` — the urllib client behind
  ``dtaint client`` and ``fleet-scan --server``.

Every frontend (CLI, REST, in-process embedding) drives the same
:class:`AnalysisDaemon`, and service runs carry the same
byte-identical canonical-findings fingerprints as in-process
``fleet-scan`` runs.
"""

from repro.service.client import ServiceClient, ServiceError, ServiceTimeout
from repro.service.daemon import (
    AnalysisDaemon,
    fleet_job_from_spec,
    verify_roundtrip,
)
from repro.service.queue import (
    CANCELLED,
    DEAD,
    DONE,
    FAILED,
    PENDING,
    POISON_ERROR_TYPES,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    JobQueue,
    dedup_key,
    job_spec,
)
from repro.service.store import (
    DB_FILENAME,
    SCHEMA_VERSION,
    ResultsDB,
    default_db_path,
    export_run_dir,
    migrate_output_dir,
)

try:
    from repro.service.api import ServiceServer, serve
except ImportError:                  # pragma: no cover - no http.server
    ServiceServer = serve = None

__all__ = [
    "AnalysisDaemon", "fleet_job_from_spec", "verify_roundtrip",
    "JobQueue", "job_spec", "dedup_key",
    "PENDING", "RUNNING", "DONE", "FAILED", "CANCELLED", "DEAD",
    "STATES", "TERMINAL_STATES", "POISON_ERROR_TYPES",
    "ResultsDB", "migrate_output_dir", "export_run_dir",
    "default_db_path", "DB_FILENAME", "SCHEMA_VERSION",
    "ServiceClient", "ServiceError", "ServiceTimeout",
    "ServiceServer", "serve",
]
