"""The persistent analysis daemon: queue → warm pool → sqlite store.

``AnalysisDaemon`` is the orchestration core every frontend shares
(REST API, ``dtaint client``, tests driving it in-process).  One
dispatcher thread loops:

1. claim up to ``workers`` pending jobs from the durable queue
   (priority order);
2. run them as one batch on the **persistent** scheduler — the warm
   worker pool survives between batches, so steady-state submissions
   skip process start-up entirely;
3. record the batch into the sqlite store (one transaction) and move
   each queue job to ``done``/``failed``.

Telemetry fans out into the store via a sink, so every scheduler
event (job_start, phase_times, cache_report, job_finish, ...) becomes
a per-job progress row the API can stream incrementally.

Crash-safe resume: on :meth:`start` the queue's ``running`` leftovers
from a dead daemon are swept back to ``pending`` and simply get
re-dispatched; results are only published in the same transaction
that completes the queue row, so a half-processed batch re-runs
without duplicating history.
"""

import json
import threading
import time

from repro import faultinject
from repro.errors import QueueFull
from repro.pipeline.scheduler import FleetJob, FleetScheduler
from repro.pipeline.telemetry import Telemetry
from repro.service.queue import (
    DEFAULT_CRASH_THRESHOLD,
    DEFAULT_MAX_ATTEMPTS,
    DONE,
    FAILED,
    JobQueue,
)
from repro.service.store import ResultsDB


def fleet_job_from_spec(spec, job_id, default_shards=0):
    """Materialise a queue spec into the scheduler's job form."""
    return FleetJob(
        job_id=job_id,
        kind=spec["kind"],
        key=spec.get("key", ""),
        path=spec.get("path", ""),
        scale=spec.get("scale", 0.25),
        modules=tuple(spec.get("modules") or ()),
        shards=int(spec.get("shards") or default_shards or 0),
        member=spec.get("member", ""),
        alias_engine=spec.get("alias_engine") or "dtaint",
    )


class AnalysisDaemon:
    """Long-running analysis service over one sqlite store."""

    def __init__(self, db_path, cache_dir=None, workers=2, timeout=None,
                 retries=1, incremental=False, telemetry_path=None,
                 poll_interval=0.2, scale=None, rlimits=None,
                 heartbeat=0.0, max_queue_depth=0,
                 max_attempts=DEFAULT_MAX_ATTEMPTS,
                 crash_threshold=DEFAULT_CRASH_THRESHOLD,
                 retry_after=5.0, shards=0, alias_engine="dtaint"):
        self.db = ResultsDB(db_path)
        self.queue = JobQueue(self.db, max_attempts=max_attempts,
                              crash_threshold=crash_threshold)
        self.workers = max(int(workers), 1)
        self.poll_interval = poll_interval
        self.default_scale = scale
        # Default intra-image shard count applied to jobs whose spec
        # doesn't set one (0 = unsharded, -1 = auto).
        self.default_shards = int(shards or 0)
        # Alias engine applied to submissions that don't pick one.
        self.default_alias_engine = alias_engine or "dtaint"
        # Backpressure: pending + running jobs beyond this depth make
        # submit() raise QueueFull (HTTP 429 at the API).  0 = off.
        self.max_queue_depth = max(int(max_queue_depth or 0), 0)
        self.retry_after = retry_after
        self.telemetry = Telemetry(path=telemetry_path)
        self.telemetry.add_sink(self._event_sink)
        self.scheduler = FleetScheduler(
            jobs=self.workers,
            timeout=timeout or None,
            retries=retries,
            cache_dir=cache_dir,
            use_fleet_index=incremental,
            telemetry=self.telemetry,
            rlimits=rlimits,
            heartbeat=heartbeat,
        )
        self.started_ts = time.time()
        self.batches = 0
        self.jobs_processed = 0
        self._queue_ids = {}         # fleet job_id -> queue job_id
        self._stop = threading.Event()
        self._thread = None
        self.draining = False

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Recover stranded jobs and start the dispatcher thread."""
        resumed = self.queue.recover()
        if resumed:
            self.telemetry.emit("daemon_resume", requeued=resumed)
        self._stop.clear()
        self.draining = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="dtaint-dispatch", daemon=True,
        )
        self._thread.start()
        return resumed

    def stop(self, drain_timeout=60.0):
        """Graceful drain: finish the in-flight batch, then shut down.

        The dispatcher thread stops claiming immediately; the batch it
        is mid-way through runs to completion (results published +
        queue rows finished in their one transaction) up to
        ``drain_timeout`` seconds.  Everything still ``pending`` is
        durable in sqlite and simply waits for the next daemon; a
        batch abandoned by a drain timeout is swept back to pending by
        the next start-up's :meth:`JobQueue.recover`.
        """
        self.draining = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(drain_timeout)
            self._thread = None
        self.scheduler.close()
        self.telemetry.close()
        self.db.close()

    def ready(self):
        """Readiness: accepting work and able to make progress."""
        if self.draining or self._stop.is_set():
            return False, "draining"
        if self._thread is not None and not self._thread.is_alive():
            return False, "dispatcher thread died"
        return True, "ok"

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self):
        while not self._stop.is_set():
            if not self.run_once():
                self._stop.wait(self.poll_interval)

    def run_once(self):
        """Claim and process one batch; returns the number of jobs.

        Public so tests (and synchronous embedders) can drive the
        daemon deterministically without the dispatcher thread.

        Crash safety: the queue rows' terminal states are written by
        ``record_run``'s finisher *inside the transaction that
        publishes the results*, so there is no instant at which
        results exist without their jobs being done (or vice versa).
        A daemon killed anywhere in this method leaves the jobs in
        ``running``; the next start-up sweeps them back to pending and
        the batch re-runs without duplicating history.  The three
        ``service.*`` fault-injection probes mark the interesting kill
        points: just after the claim commits, after compute finishes,
        and inside the publish transaction.
        """
        rows = self.queue.claim_batch(limit=self.workers)
        if not rows:
            return 0
        batch_label = ",".join(str(row["job_id"]) for row in rows)
        faultinject.check("service.claim", batch_label)
        fleet_jobs = []
        self._queue_ids = {}
        for row in rows:
            fleet_id = "q%d" % row["job_id"]
            self._queue_ids[fleet_id] = row["job_id"]
            fleet_jobs.append(
                fleet_job_from_spec(row["spec"], fleet_id,
                                    self.default_shards)
            )
        start = time.perf_counter()
        results = self.scheduler.run(fleet_jobs)
        wall = time.perf_counter() - start
        faultinject.check("service.dispatch", batch_label)

        def finish_queue_rows(conn, run_id, image_ids):
            for row, result in zip(rows, results):
                if result.ok:
                    self.queue.finish_in(
                        conn, row["job_id"], DONE,
                        image_id=image_ids.get(result.job.job_id),
                    )
                else:
                    self.queue.finish_in(
                        conn, row["job_id"], FAILED,
                        error=result.error,
                        error_type=result.error_type,
                    )
            faultinject.check("service.publish", batch_label)

        run_id, image_ids = self.db.record_run(
            results, wall, kind="service",
            queue_job_ids=self._queue_ids,
            finisher=finish_queue_rows,
        )
        self.batches += 1
        self.jobs_processed += len(rows)
        self.telemetry.emit(
            "batch_finish", run_id=run_id, jobs=len(rows),
            wall_seconds=round(wall, 4),
            warm_workers=self.scheduler.pool.warm_count,
        )
        return len(rows)

    def _event_sink(self, record):
        queue_job_id = self._queue_ids.get(record.get("job"))
        self.db.append_event(queue_job_id, record)

    # -- frontends ---------------------------------------------------------

    def submit(self, spec, priority=0):
        """Idempotent submission; returns the queue job row.

        Raises :class:`~repro.errors.QueueFull` when the backlog
        (pending + running) is at ``max_queue_depth`` — the REST layer
        maps this to HTTP 429 with a ``Retry-After`` hint.
        """
        if self.max_queue_depth:
            depth = self.queue.depth()
            if depth >= self.max_queue_depth:
                raise QueueFull(depth, self.max_queue_depth,
                                retry_after=self.retry_after)
        job_id, outcome = self.queue.submit(spec, priority=priority)
        self.telemetry.emit(
            "job_submitted", queue_job_id=job_id, outcome=outcome,
            kind=spec.get("kind", ""),
            target=spec.get("key") or spec.get("path") or "",
        )
        job = self.queue.get(job_id)
        job["outcome"] = outcome
        return job

    def job_status(self, job_id):
        return self.queue.get(job_id)

    def job_findings(self, job_id):
        """The canonical findings document for a finished job."""
        job = self.queue.get(job_id)
        if job is None:
            return None
        response = {"job_id": job_id, "state": job["state"]}
        if job.get("image_id"):
            document = self.db.image_document(job["image_id"])
            if document is not None:
                response["findings"] = document.get("findings")
                response["findings_sha256"] = document.get(
                    "findings_sha256", ""
                )
                response["target"] = document.get("target", "")
                response["document"] = document
        return response

    def job_events(self, job_id, after=0, limit=1000):
        return self.db.events(queue_job_id=job_id, after=after,
                              limit=limit)

    def stats(self):
        stats = self.db.stats()
        stats.update({
            "uptime_seconds": round(time.time() - self.started_ts, 3),
            "workers": self.workers,
            "warm_workers": (
                self.scheduler.pool.warm_count
                if self.scheduler._pool is not None else 0
            ),
            "workers_spawned": (
                self.scheduler.pool.spawned_total
                if self.scheduler._pool is not None else 0
            ),
            "batches": self.batches,
            "jobs_processed": self.jobs_processed,
            "draining": self.draining,
            "queue_depth": self.queue.depth(),
            "max_queue_depth": self.max_queue_depth,
            "quarantined_images": sum(
                1 for row in self.queue.quarantined_images()
                if row["quarantined"]
            ),
        })
        return stats


def verify_roundtrip(document):
    """Re-derive the fingerprint of a stored findings document.

    Sanity helper for clients: the stored ``findings`` section *is*
    the canonical document :func:`~repro.pipeline.results.
    findings_fingerprint` hashes, so hashing it again must reproduce
    the stored ``findings_sha256`` exactly.  Returns ``True`` when it
    does.
    """
    import hashlib

    findings = document.get("findings")
    if findings is None:
        return False
    blob = json.dumps(
        findings, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return (hashlib.sha256(blob).hexdigest()
            == document.get("findings_sha256"))
