"""Service chaos harness: kill the daemon at every interesting point.

The chaos contract the service stack promises (and the acceptance
criterion this module verifies) is:

* **zero loss** — every accepted job eventually reaches ``done``, no
  matter where the daemon was killed;
* **zero duplication** — recovery never publishes a batch twice: each
  queue job owns at most one ``images`` row;
* **byte-identical results** — the canonical ``findings_sha256`` of
  every job after a kill + recovery equals the fingerprint of an
  uninterrupted run.

The harness drives a real :class:`~repro.service.daemon.
AnalysisDaemon` in a **forked child process** with a ``kill9`` fault
armed at one of the ``service.*`` probe sites
(:mod:`repro.faultinject`), delivering an un-catchable ``SIGKILL`` at
that exact point:

======================  ==============================================
``service.claim``       just after the claim transaction committed —
                        jobs are ``running``, nothing computed
``service.dispatch``    after the batch computed, before publication —
                        results exist only in worker memory
``service.publish``     inside the publish transaction, after the
                        queue rows were marked done but before COMMIT
                        — the WAL journal must roll everything back
======================  ==============================================

After the child dies the parent reopens the store, runs recovery
(:meth:`JobQueue.recover` + drained ``run_once`` calls) and audits the
three guarantees.  :func:`chaos_sweep` walks every point and returns
the triage document the CI ``service-chaos`` job uploads.

Two more injection points ride along for the client/store layers:

* :class:`lock_contender` — a child process holding ``BEGIN
  IMMEDIATE`` on the same database file, exercising ``busy_timeout``
  + bounded lock-retry in every parent transaction;
* ``disconnect@service.api`` — armed inside a live API server, tears
  client connections mid-request to exercise ``ServiceClient``'s
  retry and stream-resume machinery (used by the tests directly).
"""

import json
import multiprocessing
import os
import signal
import sqlite3
import time
from dataclasses import dataclass, field

from repro.errors import PipelineError
from repro.service.daemon import AnalysisDaemon
from repro.service.queue import DONE, JobQueue, job_spec
from repro.service.store import ResultsDB

CHAOS_POINTS = ("service.claim", "service.dispatch", "service.publish")

# Conservative defaults for the smoke sweep: tiny profiles, small pool.
DEFAULT_PROFILES = ("dir645", "dgn1000")
DEFAULT_SCALE = 0.1


@dataclass
class ChaosOutcome:
    """The audit of one kill point (or the uninterrupted baseline)."""

    point: str
    killed: bool = False
    exit_detail: str = ""
    submitted: int = 0
    recovered: int = 0           # jobs requeued by recovery
    done: int = 0
    lost: list = field(default_factory=list)
    duplicated: list = field(default_factory=list)
    fingerprints: dict = field(default_factory=dict)  # target -> sha256
    mismatched: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.lost and not self.duplicated and not self.mismatched

    def to_dict(self):
        return {
            "point": self.point,
            "ok": self.ok,
            "killed": self.killed,
            "exit_detail": self.exit_detail,
            "submitted": self.submitted,
            "recovered": self.recovered,
            "done": self.done,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "fingerprints": self.fingerprints,
            "mismatched": self.mismatched,
        }


def _daemon(db_path, workers, scale):
    return AnalysisDaemon(
        db_path, workers=workers, scale=scale, retries=1,
        heartbeat=0.2, poll_interval=0.05,
    )


def _submit_jobs(db_path, profiles, scale):
    """Seed the queue; returns ``{queue_job_id: profile_key}``."""
    with ResultsDB(db_path) as db:
        queue = JobQueue(db)
        jobs = {}
        for key in profiles:
            job_id, outcome = queue.submit(
                job_spec("profile", key=key, scale=scale)
            )
            if outcome != "created":
                raise PipelineError(
                    "chaos run needs a fresh database (job %s was %s)"
                    % (key, outcome)
                )
            jobs[job_id] = key
    return jobs


def _chaos_child(db_path, specs, workers, scale):
    """Child body: arm the fault, drain the queue, exit clean.

    With a ``kill9`` spec armed the drain dies by SIGKILL at the probe;
    without (baseline) it processes everything and exits 0.
    """
    from repro import faultinject

    if specs:
        faultinject.install(faultinject.FaultInjector(specs))
    daemon = _daemon(db_path, workers, scale)
    try:
        daemon.queue.recover()
        while daemon.run_once():
            pass
    finally:
        daemon.stop()
    os._exit(0)


def _run_child(db_path, specs, workers, scale, timeout=600.0):
    """Fork the drain child; returns (killed_by_sigkill, detail)."""
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_chaos_child, args=(db_path, specs, workers, scale),
        name="dtaint-chaos-child",
    )
    child.start()
    child.join(timeout)
    if child.is_alive():
        child.kill()
        child.join(10)
        return False, "hung (killed after %.0fs)" % timeout
    code = child.exitcode
    if code == -signal.SIGKILL:
        return True, "SIGKILL at probe"
    return False, "exit %s" % code


def _audit(db_path, jobs, baseline, outcome):
    """Check zero-loss / zero-dup / fingerprint equality post-recovery."""
    with ResultsDB(db_path) as db:
        queue = JobQueue(db)
        for job_id, key in sorted(jobs.items()):
            row = queue.get(job_id)
            if row is None or row["state"] != DONE:
                outcome.lost.append({
                    "job_id": job_id, "target": key,
                    "state": row["state"] if row else "missing",
                })
                continue
            outcome.done += 1
        with db._lock:
            dup_rows = db._conn.execute(
                "SELECT queue_job_id, COUNT(*) AS n FROM images "
                "WHERE queue_job_id IS NOT NULL "
                "GROUP BY queue_job_id HAVING n > 1"
            ).fetchall()
            sha_rows = db._conn.execute(
                "SELECT queue_job_id, findings_sha256 FROM images "
                "WHERE queue_job_id IS NOT NULL"
            ).fetchall()
        outcome.duplicated = [
            {"job_id": row["queue_job_id"], "published_runs": row["n"]}
            for row in dup_rows
        ]
        shas = {row["queue_job_id"]: row["findings_sha256"]
                for row in sha_rows}
    for job_id, key in sorted(jobs.items()):
        sha = shas.get(job_id, "")
        outcome.fingerprints[key] = sha
        expected = (baseline or {}).get(key)
        if expected is not None and sha != expected:
            outcome.mismatched.append({
                "target": key, "expected": expected, "got": sha,
            })
    return outcome


def baseline_fingerprints(work_dir, profiles=DEFAULT_PROFILES,
                          scale=DEFAULT_SCALE, workers=2):
    """Uninterrupted run on a fresh store: target -> findings_sha256."""
    db_path = os.path.join(work_dir, "baseline.sqlite")
    jobs = _submit_jobs(db_path, profiles, scale)
    killed, detail = _run_child(db_path, (), workers, scale)
    if killed:
        raise PipelineError("baseline run died: %s" % detail)
    outcome = _audit(db_path, jobs, None, ChaosOutcome(point="baseline"))
    outcome.submitted = len(jobs)
    outcome.exit_detail = detail
    if len([s for s in outcome.fingerprints.values() if s]) != len(jobs):
        raise PipelineError(
            "baseline run incomplete: %s" % outcome.to_dict()
        )
    return outcome.fingerprints


def chaos_run(point, work_dir, baseline, profiles=DEFAULT_PROFILES,
              scale=DEFAULT_SCALE, workers=2):
    """Kill at ``point``, recover, audit; returns a ChaosOutcome.

    Each point gets its own fresh database: exactly one kill per
    history, so the per-image circuit breaker (threshold 3) never
    conflates injected daemon deaths with a genuinely poisonous image.
    """
    db_path = os.path.join(
        work_dir, "chaos-%s.sqlite" % point.replace(".", "-")
    )
    jobs = _submit_jobs(db_path, profiles, scale)
    outcome = ChaosOutcome(point=point, submitted=len(jobs))
    spec = "kill9@%s:*" % point
    outcome.killed, outcome.exit_detail = _run_child(
        db_path, (spec,), workers, scale
    )
    # Recovery pass: a fresh "daemon" (no faults) sweeps running →
    # pending and drains the queue to empty.
    with ResultsDB(db_path) as db:
        outcome.recovered = JobQueue(db).recover()
    killed, detail = _run_child(db_path, (), workers, scale)
    if killed:
        outcome.exit_detail += "; recovery died: %s" % detail
    return _audit(db_path, jobs, baseline, outcome)


def chaos_sweep(work_dir, points=CHAOS_POINTS, profiles=DEFAULT_PROFILES,
                scale=DEFAULT_SCALE, workers=2):
    """The full kill sweep; returns the triage document (CI artifact)."""
    os.makedirs(work_dir, exist_ok=True)
    started = time.time()
    baseline = baseline_fingerprints(
        work_dir, profiles=profiles, scale=scale, workers=workers
    )
    outcomes = [
        chaos_run(point, work_dir, baseline, profiles=profiles,
                  scale=scale, workers=workers)
        for point in points
    ]
    document = {
        "kind": "service-chaos",
        "profiles": list(profiles),
        "scale": scale,
        "workers": workers,
        "wall_seconds": round(time.time() - started, 3),
        "baseline_fingerprints": baseline,
        "points": [outcome.to_dict() for outcome in outcomes],
        "ok": all(outcome.ok for outcome in outcomes),
    }
    path = os.path.join(work_dir, "chaos-triage.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    document["triage_path"] = path
    return document


class lock_contender:
    """``with lock_contender(db_path, hold=1.0):`` — a child process
    holding ``BEGIN IMMEDIATE`` on the database for ``hold`` seconds.

    Exercises the cross-process lock discipline: while the contender
    holds the write lock, every parent transaction must wait it out
    via ``busy_timeout`` / bounded retry instead of surfacing a raw
    ``database is locked``.
    """

    def __init__(self, db_path, hold=1.0):
        self.db_path = db_path
        self.hold = hold
        self.child = None

    @staticmethod
    def _hold_lock(db_path, hold):
        conn = sqlite3.connect(db_path, timeout=30.0,
                               isolation_level=None)
        conn.execute("PRAGMA busy_timeout=10000")
        conn.execute("BEGIN IMMEDIATE")
        time.sleep(hold)
        conn.execute("COMMIT")
        conn.close()
        os._exit(0)

    def __enter__(self):
        ctx = multiprocessing.get_context("fork")
        self.child = ctx.Process(
            target=self._hold_lock, args=(self.db_path, self.hold),
            name="dtaint-lock-contender",
        )
        self.child.start()
        # Don't return until the lock is actually held, or the test
        # would race the child to the first transaction.
        deadline = time.monotonic() + 10.0
        probe = sqlite3.connect(self.db_path, timeout=0.05,
                                isolation_level=None)
        try:
            while time.monotonic() < deadline:
                try:
                    probe.execute("BEGIN IMMEDIATE")
                    probe.execute("ROLLBACK")
                    time.sleep(0.02)
                except sqlite3.OperationalError:
                    return self        # contender holds the write lock
        finally:
            probe.close()
        raise PipelineError("lock contender never acquired the lock")

    def __exit__(self, *exc):
        if self.child is not None:
            self.child.join(max(self.hold * 4, 10.0))
            if self.child.is_alive():
                self.child.kill()
                self.child.join(5)
        return False
