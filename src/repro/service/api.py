"""The REST/JSON frontend over :class:`AnalysisDaemon`.

Deliberately dependency-light: stdlib ``http.server`` with a threaded
server, JSON bodies, and an NDJSON progress stream — the same wire
format the telemetry file uses, so ``curl .../events`` reads exactly
like ``tail -f telemetry.jsonl``.

API surface (all under ``/api/v1``):

====== =========================== =====================================
POST   /jobs                        submit ``{kind, key|path, scale,
                                    modules, priority}``; idempotent
GET    /jobs?state=&limit=          recent jobs, optionally by state
GET    /jobs/<id>                   one job's queue row
POST   /jobs/<id>/cancel            cancel pending / request-cancel
                                    running
GET    /jobs/<id>/events?after=     NDJSON progress stream (resume
                                    with the last ``event_id``)
GET    /jobs/<id>/findings          canonical findings + fingerprint
POST   /jobs/<id>/retry             requeue a dead-lettered job with a
                                    fresh budget (operator action)
GET    /deadletter                  the dead-letter queue + breaker info
GET    /quarantine                  per-image circuit-breaker table
POST   /quarantine/reset            clear one ``{dedup_key}`` breaker
GET    /findings?function=&kind=    fleet-wide indexed findings query
GET    /stats                       queue + store + pool statistics
GET    /healthz                     liveness probe
GET    /readyz                      readiness probe (503 while
                                    draining / dispatcher dead)
POST   /shutdown                    clean stop (only with
                                    ``allow_shutdown``; CI smoke uses
                                    this)
====== =========================== =====================================

Backpressure: when the daemon's queue depth is at its configured
limit, ``POST /jobs`` returns **429** with a ``Retry-After`` header —
durable submission is the client's to retry, not the server's to
buffer unboundedly.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import faultinject
from repro.errors import PipelineError, QueueFull
from repro.service.queue import STATES, job_spec

API_PREFIX = "/api/v1"


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the daemon it serves."""

    protocol_version = "HTTP/1.1"
    server_version = "dtaintd/1"

    # -- plumbing ----------------------------------------------------------

    @property
    def daemon(self):
        return self.server.analysis_daemon

    def log_message(self, format, *args):     # noqa: A002 (stdlib name)
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, payload, status=200):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_ndjson(self, records, status=200):
        body = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message, status=400):
        self._send_json({"error": message}, status=status)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except ValueError:
            raise PipelineError("request body is not valid JSON")

    # -- dispatch ----------------------------------------------------------

    def do_GET(self):
        self._route("GET")

    def do_POST(self):
        self._route("POST")

    def _route(self, method):
        url = urlparse(self.path)
        if not url.path.startswith(API_PREFIX):
            return self._error("unknown path %s" % url.path, status=404)
        parts = [p for p in url.path[len(API_PREFIX):].split("/") if p]
        query = {
            key: values[-1]
            for key, values in parse_qs(url.query).items()
        }
        try:
            # Chaos probe: a ``disconnect@service.api`` spec tears this
            # connection mid-request, exercising the client's
            # retry/resume machinery against a real dropped socket.
            faultinject.check("service.api", url.path)
            handler = self._resolve(method, parts)
            if handler is None:
                return self._error(
                    "no route %s %s" % (method, url.path), status=404
                )
            handler(query)
        except QueueFull as exc:
            body = (json.dumps({
                "error": str(exc), "retry_after": exc.retry_after,
            }, sort_keys=True) + "\n").encode("utf-8")
            self.send_response(429)
            self.send_header("Content-Type", "application/json")
            self.send_header("Retry-After",
                             str(int(max(exc.retry_after, 1))))
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except PipelineError as exc:
            self._error(str(exc), status=400)
        except (BrokenPipeError, ConnectionResetError):
            # Torn client connection (or an injected one): close the
            # socket without a response; the client retries.
            self.close_connection = True
        except Exception as exc:      # never kill the serving thread
            self._error("internal error: %s" % exc, status=500)

    def _resolve(self, method, parts):
        if method == "GET":
            if parts == ["healthz"]:
                return self._get_healthz
            if parts == ["readyz"]:
                return self._get_readyz
            if parts == ["stats"]:
                return self._get_stats
            if parts == ["jobs"]:
                return self._get_jobs
            if parts == ["findings"]:
                return self._get_findings
            if parts == ["deadletter"]:
                return self._get_deadletter
            if parts == ["quarantine"]:
                return self._get_quarantine
            if len(parts) == 2 and parts[0] == "jobs":
                return lambda q: self._get_job(parts[1], q)
            if len(parts) == 3 and parts[0] == "jobs":
                if parts[2] == "events":
                    return lambda q: self._get_job_events(parts[1], q)
                if parts[2] == "findings":
                    return lambda q: self._get_job_findings(parts[1], q)
        if method == "POST":
            if parts == ["jobs"]:
                return self._post_job
            if parts == ["shutdown"]:
                return self._post_shutdown
            if parts == ["quarantine", "reset"]:
                return self._post_quarantine_reset
            if len(parts) == 3 and parts[0] == "jobs":
                if parts[2] == "cancel":
                    return lambda q: self._post_cancel(parts[1], q)
                if parts[2] == "retry":
                    return lambda q: self._post_retry(parts[1], q)
        return None

    @staticmethod
    def _job_id(raw):
        try:
            return int(raw)
        except ValueError:
            raise PipelineError("job id must be an integer, got %r" % raw)

    # -- endpoints ---------------------------------------------------------

    def _get_healthz(self, query):
        self._send_json({"ok": True, "service": "dtaint"})

    def _get_readyz(self, query):
        ready, reason = self.daemon.ready()
        self._send_json(
            {"ready": ready, "reason": reason},
            status=200 if ready else 503,
        )

    def _get_deadletter(self, query):
        self._send_json({
            "jobs": self.daemon.queue.dead_letter(
                limit=int(query.get("limit", 200))
            ),
        })

    def _get_quarantine(self, query):
        self._send_json({
            "images": self.daemon.queue.quarantined_images(),
        })

    def _post_retry(self, raw_id, query):
        outcome = self.daemon.queue.retry_dead(self._job_id(raw_id))
        if outcome == "missing":
            return self._error("no such job", status=404)
        if outcome == "not_dead":
            return self._error("job is not dead-lettered", status=409)
        self._send_json({
            "job_id": self._job_id(raw_id), "outcome": outcome,
        })

    def _post_quarantine_reset(self, query):
        body = self._read_body()
        key = body.get("dedup_key", "")
        if not key:
            raise PipelineError("dedup_key is required")
        removed = self.daemon.queue.reset_quarantine(key)
        self._send_json({"dedup_key": key, "removed": removed})

    def _get_stats(self, query):
        self._send_json(self.daemon.stats())

    def _get_jobs(self, query):
        state = query.get("state")
        if state and state not in STATES:
            raise PipelineError(
                "unknown state %r; choices: %s" % (state, ", ".join(STATES))
            )
        jobs = self.daemon.queue.list_jobs(
            state=state, limit=int(query.get("limit", 200))
        )
        self._send_json({"jobs": jobs})

    def _get_job(self, raw_id, query):
        job = self.daemon.job_status(self._job_id(raw_id))
        if job is None:
            return self._error("no such job", status=404)
        self._send_json(job)

    def _get_job_events(self, raw_id, query):
        events = self.daemon.job_events(
            self._job_id(raw_id),
            after=int(query.get("after", 0)),
            limit=int(query.get("limit", 1000)),
        )
        self._send_ndjson(events)

    def _get_job_findings(self, raw_id, query):
        response = self.daemon.job_findings(self._job_id(raw_id))
        if response is None:
            return self._error("no such job", status=404)
        self._send_json(response)

    def _get_findings(self, query):
        rows = self.daemon.db.query_findings(
            function=query.get("function"),
            kind=query.get("kind"),
            section=query.get("section"),
            run_id=int(query["run_id"]) if "run_id" in query else None,
            limit=int(query.get("limit", 200)),
        )
        self._send_json({"findings": rows})

    def _post_job(self, query):
        body = self._read_body()
        spec = job_spec(
            kind=body.get("kind", "profile"),
            key=body.get("key", ""),
            path=body.get("path", ""),
            scale=body.get("scale", self.daemon.default_scale or 0.25),
            modules=body.get("modules") or (),
            shards=int(body.get("shards") or 0),
            member=body.get("member", ""),
            alias_engine=body.get(
                "alias_engine", self.daemon.default_alias_engine
            ),
        )
        job = self.daemon.submit(spec, priority=int(body.get("priority", 0)))
        status = 201 if job["outcome"] == "created" else 200
        self._send_json(job, status=status)

    def _post_cancel(self, raw_id, query):
        disposition = self.daemon.queue.cancel(self._job_id(raw_id))
        if disposition == "missing":
            return self._error("no such job", status=404)
        self._send_json({
            "job_id": self._job_id(raw_id), "disposition": disposition,
        })

    def _post_shutdown(self, query):
        if not self.server.allow_shutdown:
            return self._error("shutdown disabled", status=403)
        self._send_json({"stopping": True})
        # Shut down from another thread: shutdown() blocks until the
        # serve loop exits, which can't happen from inside a handler.
        threading.Thread(target=self.server.shutdown, daemon=True).start()


class ServiceServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one daemon."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, daemon, allow_shutdown=False,
                 verbose=False):
        ThreadingHTTPServer.__init__(self, address, ServiceHandler)
        self.analysis_daemon = daemon
        self.allow_shutdown = allow_shutdown
        self.verbose = verbose


def serve(daemon, host="127.0.0.1", port=0, allow_shutdown=False,
          verbose=False):
    """Bind the API server (port 0 picks a free port); caller runs it.

    Returns the server; run ``server.serve_forever()`` (blocking) or
    hand it to a thread.  ``server.server_address`` carries the bound
    port.
    """
    return ServiceServer((host, port), daemon,
                         allow_shutdown=allow_shutdown, verbose=verbose)
