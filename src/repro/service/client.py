"""A thin urllib client for the daemon's REST API.

``ServiceClient`` is the programmatic face (used by ``dtaint client``
and the CI smoke); every method maps 1:1 onto an endpoint and returns
parsed JSON.  Transport and HTTP-level failures surface as
:class:`ServiceError` so callers can distinguish "the daemon said no"
from "there is no daemon".
"""

import json
import time
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.errors import PipelineError
from repro.service.api import API_PREFIX
from repro.service.queue import TERMINAL_STATES


class ServiceError(PipelineError):
    """The daemon rejected a request or could not be reached."""

    def __init__(self, message, status=None):
        PipelineError.__init__(self, message)
        self.status = status


class ServiceClient:
    """Speaks the ``/api/v1`` surface of one daemon."""

    def __init__(self, url, timeout=30.0):
        self.base = url.rstrip("/")
        if not self.base.startswith("http"):
            self.base = "http://" + self.base
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(self, method, path, body=None, raw=False):
        url = self.base + API_PREFIX + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(url, data=data, headers=headers,
                                 method=method)
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as response:
                payload = response.read().decode("utf-8")
        except urlerror.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(
                "%s %s -> %d: %s" % (method, path, exc.code, detail),
                status=exc.code,
            )
        except (urlerror.URLError, OSError) as exc:
            raise ServiceError(
                "cannot reach daemon at %s: %s" % (self.base, exc)
            )
        if raw:
            return payload
        return json.loads(payload) if payload.strip() else {}

    # -- endpoints ---------------------------------------------------------

    def healthz(self):
        return self._request("GET", "/healthz")

    def stats(self):
        return self._request("GET", "/stats")

    def submit(self, kind="profile", key="", path="", scale=None,
               modules=(), priority=0):
        body = {"kind": kind, "key": key, "path": path,
                "modules": list(modules), "priority": priority}
        if scale is not None:
            body["scale"] = scale
        return self._request("POST", "/jobs", body=body)

    def jobs(self, state=None, limit=200):
        path = "/jobs?limit=%d" % limit
        if state:
            path += "&state=%s" % state
        return self._request("GET", path)["jobs"]

    def job(self, job_id):
        return self._request("GET", "/jobs/%d" % int(job_id))

    def cancel(self, job_id):
        return self._request("POST", "/jobs/%d/cancel" % int(job_id))

    def events(self, job_id, after=0, limit=1000):
        payload = self._request(
            "GET", "/jobs/%d/events?after=%d&limit=%d"
                   % (int(job_id), int(after), int(limit)),
            raw=True,
        )
        return [
            json.loads(line) for line in payload.splitlines() if line.strip()
        ]

    def findings(self, job_id):
        return self._request("GET", "/jobs/%d/findings" % int(job_id))

    def query_findings(self, function=None, kind=None, section=None,
                       limit=200):
        query = ["limit=%d" % limit]
        for name, value in (("function", function), ("kind", kind),
                            ("section", section)):
            if value:
                query.append("%s=%s" % (name, value))
        return self._request(
            "GET", "/findings?" + "&".join(query)
        )["findings"]

    def shutdown(self):
        return self._request("POST", "/shutdown")

    # -- conveniences ------------------------------------------------------

    def wait(self, job_id, timeout=300.0, poll=0.2):
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "job %s still %s after %.0fs"
                    % (job_id, job["state"], timeout)
                )
            time.sleep(poll)
