"""A resilient urllib client for the daemon's REST API.

``ServiceClient`` is the programmatic face (used by ``dtaint client``
and the CI smoke); every method maps 1:1 onto an endpoint and returns
parsed JSON.  Transport and HTTP-level failures surface as
:class:`ServiceError` so callers can distinguish "the daemon said no"
from "there is no daemon".

Resilience contract:

* **connection errors retry** — every request gets ``retries``
  bounded attempts with exponential backoff and deterministic jitter
  (crc32 of ``path:attempt``, so two clients hammering the same
  endpoint still spread out while a given client's schedule is
  reproducible).  This is safe for every endpoint the client exposes:
  reads are idempotent by nature and submission is idempotent by
  ``dedup_key``.
* **backpressure is honoured** — HTTP 429 sleeps for the server's
  ``Retry-After`` hint and retries, up to the same attempt budget.
* **progress streams resume** — :meth:`stream_events` remembers the
  last ``event_id`` it yielded and reconnects from that cursor after
  a dropped connection, so a consumer never misses or re-reads an
  event across daemon restarts.
"""

import json
import time
import zlib
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.errors import PipelineError
from repro.service.api import API_PREFIX
from repro.service.queue import TERMINAL_STATES


class ServiceError(PipelineError):
    """The daemon rejected a request or could not be reached."""

    def __init__(self, message, status=None):
        PipelineError.__init__(self, message)
        self.status = status


class ServiceTimeout(ServiceError):
    """A wait deadline expired before the job reached a terminal
    state.  Carries the job and its last observed state so callers
    can decide between extending the wait and cancelling."""

    def __init__(self, job_id, state, timeout_seconds):
        self.job_id = job_id
        self.state = state
        self.timeout_seconds = timeout_seconds
        ServiceError.__init__(
            self,
            "job %s still %s after %.0fs"
            % (job_id, state, timeout_seconds),
        )


def _jitter(key, attempt):
    """Deterministic jitter fraction in [0, 1) from (key, attempt)."""
    blob = ("%s:%d" % (key, attempt)).encode("utf-8")
    return (zlib.crc32(blob) % 1000) / 1000.0


class ServiceClient:
    """Speaks the ``/api/v1`` surface of one daemon."""

    def __init__(self, url, timeout=30.0, retries=3, backoff=0.2,
                 backoff_cap=10.0):
        self.base = url.rstrip("/")
        if not self.base.startswith("http"):
            self.base = "http://" + self.base
        self.timeout = timeout
        self.retries = max(int(retries), 0)
        self.backoff = max(float(backoff), 0.0)
        self.backoff_cap = backoff_cap

    # -- transport ---------------------------------------------------------

    def _request(self, method, path, body=None, raw=False):
        url = self.base + API_PREFIX + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error = None
        for attempt in range(self.retries + 1):
            req = urlrequest.Request(url, data=data, headers=headers,
                                     method=method)
            try:
                with urlrequest.urlopen(
                    req, timeout=self.timeout
                ) as response:
                    payload = response.read().decode("utf-8")
                if raw:
                    return payload
                return json.loads(payload) if payload.strip() else {}
            except urlerror.HTTPError as exc:
                if exc.code == 429 and attempt < self.retries:
                    # Backpressure: the server told us when to come
                    # back; submission is idempotent so a retry can
                    # never double-enqueue.
                    exc.read()
                    retry_after = float(
                        exc.headers.get("Retry-After") or 1.0
                    )
                    time.sleep(min(retry_after, self.backoff_cap))
                    continue
                detail = exc.read().decode("utf-8", "replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except ValueError:
                    pass
                raise ServiceError(
                    "%s %s -> %d: %s" % (method, path, exc.code, detail),
                    status=exc.code,
                )
            except (urlerror.URLError, ConnectionError, OSError) as exc:
                # Dropped/refused connection or a reply torn mid-read:
                # transient by assumption, retried on a deterministic
                # schedule.
                last_error = exc
                if attempt < self.retries:
                    delay = self.backoff * (2 ** attempt)
                    delay *= 1.0 + _jitter(path, attempt)
                    time.sleep(min(delay, self.backoff_cap))
                    continue
        raise ServiceError(
            "cannot reach daemon at %s after %d attempts: %s"
            % (self.base, self.retries + 1, last_error)
        )

    # -- endpoints ---------------------------------------------------------

    def healthz(self):
        return self._request("GET", "/healthz")

    def readyz(self):
        """Readiness; returns ``{"ready": bool, "reason": str}``.

        A draining daemon answers 503, which surfaces here as a
        normal response rather than an error so probes can branch on
        ``ready``.
        """
        try:
            return self._request("GET", "/readyz")
        except ServiceError as exc:
            if exc.status == 503:
                return {"ready": False, "reason": str(exc)}
            raise

    def stats(self):
        return self._request("GET", "/stats")

    def submit(self, kind="profile", key="", path="", scale=None,
               modules=(), priority=0, shards=0, member="",
               alias_engine=""):
        body = {"kind": kind, "key": key, "path": path,
                "modules": list(modules), "priority": priority}
        if scale is not None:
            body["scale"] = scale
        if shards:
            body["shards"] = int(shards)
        if member:
            body["member"] = member
        if alias_engine:
            body["alias_engine"] = alias_engine
        return self._request("POST", "/jobs", body=body)

    def submit_firmware(self, path, modules=(), priority=0, shards=0,
                        alias_engine=""):
        """Fan one firmware image into one job per embedded ELF.

        The image is unpacked locally to enumerate members (the
        daemon's workers re-extract only their own target); returns
        the list of per-member submission results.
        """
        from repro.firmware.binwalk import extract_tree

        with open(path, "rb") as handle:
            data = handle.read()
        tree = extract_tree(data, name=path)
        responses = []
        for member, _display, _elf in tree.elves():
            responses.append(self.submit(
                kind="firmware", path=path, member=member,
                modules=modules, priority=priority, shards=shards,
                alias_engine=alias_engine,
            ))
        return responses

    def jobs(self, state=None, limit=200):
        path = "/jobs?limit=%d" % limit
        if state:
            path += "&state=%s" % state
        return self._request("GET", path)["jobs"]

    def job(self, job_id):
        return self._request("GET", "/jobs/%d" % int(job_id))

    def cancel(self, job_id):
        return self._request("POST", "/jobs/%d/cancel" % int(job_id))

    def retry_dead(self, job_id):
        """Requeue one dead-lettered job (operator action)."""
        return self._request("POST", "/jobs/%d/retry" % int(job_id))

    def dead_letter(self, limit=200):
        return self._request(
            "GET", "/deadletter?limit=%d" % int(limit)
        )["jobs"]

    def quarantine(self):
        return self._request("GET", "/quarantine")["images"]

    def reset_quarantine(self, dedup_key):
        return self._request("POST", "/quarantine/reset",
                             body={"dedup_key": dedup_key})

    def events(self, job_id, after=0, limit=1000):
        payload = self._request(
            "GET", "/jobs/%d/events?after=%d&limit=%d"
                   % (int(job_id), int(after), int(limit)),
            raw=True,
        )
        return [
            json.loads(line) for line in payload.splitlines() if line.strip()
        ]

    def stream_events(self, job_id, after=0, poll=0.2, stop=None):
        """Yield a job's progress events, resuming across disconnects.

        A generator over the NDJSON feed: polls for new events after
        cursor ``after``, yields each one, and keeps the cursor at the
        last ``event_id`` seen — a dropped connection (or a daemon
        restart) costs one retried request, never a missed or
        duplicated event.  Ends when the job reaches a terminal state
        and the feed is drained, or when ``stop()`` returns true.
        """
        cursor = int(after)
        while True:
            if stop is not None and stop():
                return
            batch = self.events(job_id, after=cursor)
            for record in batch:
                cursor = max(cursor, record.get("event_id", cursor))
                yield record
            if not batch:
                job = self.job(job_id)
                if job["state"] in TERMINAL_STATES:
                    # One final drain: events appended between the
                    # empty read and the state check.
                    for record in self.events(job_id, after=cursor):
                        cursor = max(
                            cursor, record.get("event_id", cursor)
                        )
                        yield record
                    return
                time.sleep(poll)

    def findings(self, job_id):
        return self._request("GET", "/jobs/%d/findings" % int(job_id))

    def query_findings(self, function=None, kind=None, section=None,
                       limit=200):
        query = ["limit=%d" % limit]
        for name, value in (("function", function), ("kind", kind),
                            ("section", section)):
            if value:
                query.append("%s=%s" % (name, value))
        return self._request(
            "GET", "/findings?" + "&".join(query)
        )["findings"]

    def shutdown(self):
        return self._request("POST", "/shutdown")

    # -- conveniences ------------------------------------------------------

    def wait(self, job_id, timeout=300.0, poll=0.1, poll_cap=2.0):
        """Poll until the job reaches a terminal state; returns it.

        The poll interval starts at ``poll`` and doubles up to
        ``poll_cap`` — fast turnaround for quick jobs without hammering
        the daemon while a long scan runs.  Raises
        :class:`ServiceTimeout` (typed, carries the last observed
        state) when ``timeout`` expires first.
        """
        deadline = time.monotonic() + timeout
        delay = max(poll, 0.01)
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceTimeout(job_id, job["state"], timeout)
            time.sleep(min(delay, poll_cap, remaining))
            delay = min(delay * 2, poll_cap)
