"""ResultsStore v2: the indexed sqlite results + queue store.

One WAL-mode sqlite file (``dtaint.sqlite``) replaces the per-run
``images/*.json`` + ``fleet.json`` document tree with queryable
history:

* ``runs`` — one row per fleet batch (rollup document verbatim);
* ``images`` — one row per analysed image, carrying the **exact**
  per-image document :func:`repro.pipeline.results.image_document`
  builds, plus indexed columns (status, findings_sha256, target);
* ``findings`` — one row per canonical finding, indexed by function /
  kind / sink for fleet-wide queries;
* ``coverage`` — the per-image coverage counters, queryable without
  parsing JSON;
* ``documents`` — auxiliary run artefacts (``delta.json``,
  ``diffcheck.json``) so a whole output directory migrates losslessly;
* ``queue_jobs`` + ``events`` — the durable job queue
  (:mod:`repro.service.queue`) and the mirrored telemetry stream the
  REST API serves as per-job progress.

Two guarantees carry over from the JSON store:

* **canonical-findings fingerprint** — the stored per-image document
  embeds the same canonical findings section and ``findings_sha256``
  the JSON store writes; migrating a directory into the DB and
  exporting it back reproduces the documents exactly;
* **crash safety** — writes happen inside sqlite transactions (WAL
  journal), so a worker killed mid-write rolls back to the previous
  consistent state; the ``results`` fault-injection probe fires
  inside the transaction to prove it.  A database file that cannot
  even be opened (torn beyond journal recovery, or not sqlite at all)
  is quarantined to ``<name>.corrupt`` exactly like a corrupt summary
  bundle, and a fresh store is started in its place.
"""

import json
import os
import sqlite3
import threading
import time
import zlib

from repro import faultinject
from repro.errors import PipelineError
from repro.pipeline.results import image_document, rollup_document

# v2: adds the image_quarantine table (per-image crash circuit
# breaker).  Additive only — a v1 file upgrades in place via the
# idempotent schema below.
SCHEMA_VERSION = 2
DB_FILENAME = "dtaint.sqlite"

# Cross-process lock discipline: sqlite blocks up to busy_timeout for
# a competing writer, and on top of that every BEGIN/COMMIT retries a
# bounded number of times with deterministic-jitter backoff before a
# raw "database is locked" is allowed to surface.
BUSY_TIMEOUT_MS = 10_000
LOCK_RETRIES = 5
LOCK_RETRY_BASE = 0.05

# Indexed columns extracted from each canonical finding (the rest of
# the finding rides along verbatim in finding_json).
_FINDING_COLUMNS = (
    "function", "kind", "sink_name", "source_name", "sink_addr",
    "source_addr",
)

_COVERAGE_COLUMNS = (
    "analyzed", "selected", "total", "degraded", "truncated",
    "deadline_truncated", "degraded_callee_sites",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL DEFAULT 'fleet',
    source TEXT NOT NULL DEFAULT '',
    started_ts REAL NOT NULL DEFAULT 0,
    wall_seconds REAL NOT NULL DEFAULT 0,
    rollup_json TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS images (
    image_id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    job_id TEXT NOT NULL,
    queue_job_id INTEGER,
    target TEXT NOT NULL DEFAULT '',
    status TEXT NOT NULL DEFAULT '',
    attempts INTEGER NOT NULL DEFAULT 0,
    elapsed_seconds REAL NOT NULL DEFAULT 0,
    error_type TEXT NOT NULL DEFAULT '',
    findings_sha256 TEXT NOT NULL DEFAULT '',
    document_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_images_run ON images(run_id);
CREATE INDEX IF NOT EXISTS idx_images_job ON images(job_id);
CREATE INDEX IF NOT EXISTS idx_images_sha ON images(findings_sha256);
CREATE TABLE IF NOT EXISTS findings (
    finding_id INTEGER PRIMARY KEY AUTOINCREMENT,
    image_id INTEGER NOT NULL
        REFERENCES images(image_id) ON DELETE CASCADE,
    section TEXT NOT NULL,
    function TEXT NOT NULL DEFAULT '',
    kind TEXT NOT NULL DEFAULT '',
    sink_name TEXT NOT NULL DEFAULT '',
    source_name TEXT NOT NULL DEFAULT '',
    sink_addr INTEGER NOT NULL DEFAULT 0,
    source_addr INTEGER NOT NULL DEFAULT 0,
    finding_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_findings_image ON findings(image_id);
CREATE INDEX IF NOT EXISTS idx_findings_function ON findings(function);
CREATE INDEX IF NOT EXISTS idx_findings_kind ON findings(kind);
CREATE TABLE IF NOT EXISTS coverage (
    image_id INTEGER PRIMARY KEY
        REFERENCES images(image_id) ON DELETE CASCADE,
    analyzed INTEGER NOT NULL DEFAULT 0,
    selected INTEGER NOT NULL DEFAULT 0,
    total INTEGER NOT NULL DEFAULT 0,
    degraded INTEGER NOT NULL DEFAULT 0,
    truncated INTEGER NOT NULL DEFAULT 0,
    deadline_truncated INTEGER NOT NULL DEFAULT 0,
    degraded_callee_sites INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS documents (
    run_id INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    document_json TEXT NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS queue_jobs (
    job_id INTEGER PRIMARY KEY AUTOINCREMENT,
    dedup_key TEXT NOT NULL UNIQUE,
    spec_json TEXT NOT NULL,
    priority INTEGER NOT NULL DEFAULT 0,
    state TEXT NOT NULL DEFAULT 'pending',
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    submitted_ts REAL NOT NULL DEFAULT 0,
    started_ts REAL,
    finished_ts REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    error TEXT NOT NULL DEFAULT '',
    error_type TEXT NOT NULL DEFAULT '',
    image_id INTEGER
);
CREATE INDEX IF NOT EXISTS idx_queue_state
    ON queue_jobs(state, priority DESC, job_id);
CREATE TABLE IF NOT EXISTS events (
    event_id INTEGER PRIMARY KEY AUTOINCREMENT,
    queue_job_id INTEGER,
    seq INTEGER NOT NULL DEFAULT 0,
    ts REAL NOT NULL DEFAULT 0,
    event TEXT NOT NULL,
    payload_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_job ON events(queue_job_id, event_id);
CREATE TABLE IF NOT EXISTS image_quarantine (
    dedup_key TEXT PRIMARY KEY,
    crash_count INTEGER NOT NULL DEFAULT 0,
    quarantined INTEGER NOT NULL DEFAULT 0,
    last_error_type TEXT NOT NULL DEFAULT '',
    updated_ts REAL NOT NULL DEFAULT 0
);
"""


def _quarantine(path):
    """Move an unreadable database aside to ``<path>.corrupt``."""
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        pass
    # WAL side-car files belong to the dead database; a fresh store
    # must not inherit them.
    for suffix in ("-wal", "-shm"):
        try:
            os.unlink(path + suffix)
        except OSError:
            pass


def default_db_path(out_dir):
    """The conventional database location inside an output directory."""
    return os.path.join(out_dir, DB_FILENAME)


class ResultsDB:
    """The sqlite-backed results + queue store (WAL mode, thread-safe).

    One connection is shared across threads behind an ``RLock``; WAL
    mode keeps readers from blocking the writer.  Every public write
    method is one transaction — killed mid-write, the journal rolls
    the file back to the previous consistent state.
    """

    def __init__(self, path):
        self.path = path
        self.basename = os.path.basename(path)
        self.quarantined = 0
        self._lock = threading.RLock()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = self._open_with_quarantine()

    def _open_with_quarantine(self):
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            # Not a database / corrupt beyond journal recovery: move
            # the evidence aside and start clean, like the summary
            # cache does for torn bundles.
            self.quarantined += 1
            _quarantine(self.path)
            return self._connect()

    def _connect(self):
        conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None,
            timeout=30.0,
        )
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        conn.execute("PRAGMA busy_timeout=%d" % BUSY_TIMEOUT_MS)
        with self._lock:
            _locked_retry(conn, "BEGIN IMMEDIATE")
            try:
                for statement in _SCHEMA.split(";"):
                    if statement.strip():
                        conn.execute(statement)
                conn.execute(
                    "INSERT OR IGNORE INTO meta(key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                # Additive upgrades (v1 -> v2 only adds a table): the
                # idempotent DDL above already ran, so just advance
                # the recorded version; never regress it.
                conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'"
                    " AND CAST(value AS INTEGER) < ?",
                    (str(SCHEMA_VERSION), SCHEMA_VERSION),
                )
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
        return conn

    def close(self):
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- transactions ------------------------------------------------------

    def _transaction(self):
        return _Transaction(self)

    # -- write paths -------------------------------------------------------

    def record_run(self, results, wall_seconds, kind="fleet", source="",
                   queue_job_ids=None, finisher=None):
        """Persist one fleet batch; returns ``(run_id, job->image map)``.

        The whole batch is one transaction: the ``results``
        fault-injection probe fires between the inserts and the
        commit, modelling a daemon killed mid-publication — the
        journal rolls everything back and the previous history stays
        intact.

        ``finisher(conn, run_id, image_ids)``, when given, runs inside
        the *same* transaction — the daemon uses it to mark queue rows
        done/failed atomically with the results they describe, so no
        crash point can separate "results published" from "job
        completed" (the pair either both commit or both roll back).
        """
        rollup = rollup_document(results, wall_seconds)
        queue_job_ids = queue_job_ids or {}
        with self._transaction() as conn:
            run_id = self._insert_run(conn, kind, source, wall_seconds,
                                      rollup)
            image_ids = {}
            for result in results:
                document = image_document(result)
                image_ids[result.job.job_id] = self._insert_image(
                    conn, run_id, document,
                    queue_job_ids.get(result.job.job_id),
                )
            if finisher is not None:
                finisher(conn, run_id, image_ids)
            faultinject.check("results", self.basename)
        return run_id, image_ids

    def import_run(self, rollup, image_documents, documents=None,
                   kind="migrated", source=""):
        """Insert pre-built documents (migration path); returns run_id."""
        with self._transaction() as conn:
            run_id = self._insert_run(
                conn, kind, source,
                (rollup or {}).get("wall_seconds", 0.0), rollup or {},
            )
            for document in image_documents:
                self._insert_image(conn, run_id, document, None)
            for name, document in sorted((documents or {}).items()):
                conn.execute(
                    "INSERT OR REPLACE INTO documents"
                    "(run_id, name, document_json) VALUES (?, ?, ?)",
                    (run_id, name, _dumps(document)),
                )
            faultinject.check("results", self.basename)
        return run_id

    def _insert_run(self, conn, kind, source, wall_seconds, rollup):
        cursor = conn.execute(
            "INSERT INTO runs(kind, source, started_ts, wall_seconds, "
            "rollup_json) VALUES (?, ?, ?, ?, ?)",
            (kind, source, time.time(), wall_seconds, _dumps(rollup)),
        )
        return cursor.lastrowid

    def _insert_image(self, conn, run_id, document, queue_job_id):
        cursor = conn.execute(
            "INSERT INTO images(run_id, job_id, queue_job_id, target, "
            "status, attempts, elapsed_seconds, error_type, "
            "findings_sha256, document_json) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                run_id,
                document.get("job_id", ""),
                queue_job_id,
                document.get("target", ""),
                document.get("status", ""),
                document.get("attempts", 0),
                document.get("elapsed_seconds", 0.0),
                document.get("error_type", ""),
                document.get("findings_sha256", ""),
                _dumps(document),
            ),
        )
        image_id = cursor.lastrowid
        findings = document.get("findings") or {}
        for section in ("vulnerable_paths", "vulnerabilities",
                        "sanitized_paths"):
            for finding in findings.get(section, []) or []:
                conn.execute(
                    "INSERT INTO findings(image_id, section, function, "
                    "kind, sink_name, source_name, sink_addr, "
                    "source_addr, finding_json) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (image_id, section)
                    + tuple(
                        finding.get(column) or (
                            0 if column.endswith("_addr") else ""
                        )
                        for column in _FINDING_COLUMNS
                    )
                    + (_dumps(finding),),
                )
        coverage = findings.get("coverage") or {}
        if coverage:
            conn.execute(
                "INSERT OR REPLACE INTO coverage(image_id, %s) "
                "VALUES (?, %s)" % (
                    ", ".join(_COVERAGE_COLUMNS),
                    ", ".join("?" for _ in _COVERAGE_COLUMNS),
                ),
                (image_id,) + tuple(
                    coverage.get(column, 0) for column in _COVERAGE_COLUMNS
                ),
            )
        return image_id

    def append_event(self, queue_job_id, record):
        """Mirror one telemetry record into the per-job progress feed."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO events(queue_job_id, seq, ts, event, "
                "payload_json) VALUES (?, ?, ?, ?, ?)",
                (queue_job_id, record.get("seq", 0), record.get("ts", 0.0),
                 record.get("event", ""), _dumps(record)),
            )

    # -- read paths --------------------------------------------------------

    def run_ids(self):
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_id FROM runs ORDER BY run_id"
            ).fetchall()
        return [row["run_id"] for row in rows]

    def latest_run_id(self):
        with self._lock:
            row = self._conn.execute(
                "SELECT MAX(run_id) AS run_id FROM runs"
            ).fetchone()
        return row["run_id"]

    def rollup(self, run_id):
        with self._lock:
            row = self._conn.execute(
                "SELECT rollup_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise PipelineError("no run %r in %s" % (run_id, self.path))
        return json.loads(row["rollup_json"])

    def image_documents(self, run_id):
        """``{job_id: per-image document}`` for one run."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, document_json FROM images "
                "WHERE run_id = ? ORDER BY image_id", (run_id,)
            ).fetchall()
        return {
            row["job_id"]: json.loads(row["document_json"]) for row in rows
        }

    def image_document(self, image_id):
        with self._lock:
            row = self._conn.execute(
                "SELECT document_json FROM images WHERE image_id = ?",
                (image_id,),
            ).fetchone()
        return json.loads(row["document_json"]) if row else None

    def export_run(self, run_id):
        """Everything one run persisted, as plain documents."""
        with self._lock:
            documents = {
                row["name"]: json.loads(row["document_json"])
                for row in self._conn.execute(
                    "SELECT name, document_json FROM documents "
                    "WHERE run_id = ? ORDER BY name", (run_id,)
                )
            }
        return {
            "rollup": self.rollup(run_id),
            "images": self.image_documents(run_id),
            "documents": documents,
        }

    def baseline_documents(self, run_id=None):
        """Per-image documents to diff a new run against (latest run).

        This is the DB-backed equivalent of reading a previous
        ``--out`` directory's ``images/*.json``: ``fleet-scan
        --baseline`` accepts either form.
        """
        run_id = run_id if run_id is not None else self.latest_run_id()
        if run_id is None:
            return {}
        return self.image_documents(run_id)

    def query_findings(self, function=None, kind=None, section=None,
                       run_id=None, limit=200):
        """Fleet-wide canonical-finding query over the indexed columns."""
        clauses, params = [], []
        if function:
            clauses.append("f.function = ?")
            params.append(function)
        if kind:
            clauses.append("f.kind = ?")
            params.append(kind)
        if section:
            clauses.append("f.section = ?")
            params.append(section)
        if run_id is not None:
            clauses.append("i.run_id = ?")
            params.append(run_id)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(
                "SELECT f.section, f.finding_json, i.job_id, i.run_id, "
                "i.target FROM findings f JOIN images i "
                "ON f.image_id = i.image_id"
                + where + " ORDER BY f.finding_id LIMIT ?",
                params,
            ).fetchall()
        return [
            {
                "run_id": row["run_id"],
                "job_id": row["job_id"],
                "target": row["target"],
                "section": row["section"],
                "finding": json.loads(row["finding_json"]),
            }
            for row in rows
        ]

    def events(self, queue_job_id=None, after=0, limit=1000):
        """Progress events (``event_id`` is the resume cursor)."""
        clauses, params = ["event_id > ?"], [int(after)]
        if queue_job_id is not None:
            clauses.append("queue_job_id = ?")
            params.append(int(queue_job_id))
        params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(
                "SELECT event_id, payload_json FROM events WHERE "
                + " AND ".join(clauses) + " ORDER BY event_id LIMIT ?",
                params,
            ).fetchall()
        events = []
        for row in rows:
            record = json.loads(row["payload_json"])
            record["event_id"] = row["event_id"]
            events.append(record)
        return events

    def stats(self):
        """Queue/state counts plus fleet-wide aggregates."""
        with self._lock:
            queue = {
                row["state"]: row["n"] for row in self._conn.execute(
                    "SELECT state, COUNT(*) AS n FROM queue_jobs "
                    "GROUP BY state"
                )
            }
            runs = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs").fetchone()["n"]
            images = self._conn.execute(
                "SELECT COUNT(*) AS n FROM images").fetchone()["n"]
            findings = {
                row["section"]: row["n"] for row in self._conn.execute(
                    "SELECT section, COUNT(*) AS n FROM findings "
                    "GROUP BY section"
                )
            }
            coverage = self._conn.execute(
                "SELECT COALESCE(SUM(analyzed), 0) AS analyzed, "
                "COALESCE(SUM(degraded), 0) AS degraded FROM coverage"
            ).fetchone()
        return {
            "schema_version": SCHEMA_VERSION,
            "db_path": self.path,
            "db_bytes": _file_size(self.path),
            "queue": queue,
            "runs": runs,
            "images": images,
            "findings": findings,
            "analyzed_functions": coverage["analyzed"],
            "degraded_functions": coverage["degraded"],
        }

    # -- maintenance -------------------------------------------------------

    def gc(self, retain_runs=None, retain_jobs=None, dry_run=False):
        """Retention: keep the newest N runs / terminal queue jobs.

        Deleting a run cascades to its images, findings, coverage and
        documents; pruned queue jobs drop their event feed too.
        Returns the would-be/actual removal counts either way.
        """
        stats = {"runs_removed": 0, "images_removed": 0,
                 "jobs_removed": 0, "events_removed": 0}
        with self._lock:
            old_runs = []
            if retain_runs is not None:
                old_runs = [
                    row["run_id"] for row in self._conn.execute(
                        "SELECT run_id FROM runs ORDER BY run_id DESC "
                        "LIMIT -1 OFFSET ?", (max(int(retain_runs), 0),)
                    )
                ]
            old_jobs = []
            if retain_jobs is not None:
                old_jobs = [
                    row["job_id"] for row in self._conn.execute(
                        "SELECT job_id FROM queue_jobs WHERE state IN "
                        "('done', 'failed', 'cancelled') "
                        "ORDER BY job_id DESC LIMIT -1 OFFSET ?",
                        (max(int(retain_jobs), 0),),
                    )
                ]
            stats["runs_removed"] = len(old_runs)
            stats["jobs_removed"] = len(old_jobs)
            if old_runs:
                marks = ",".join("?" for _ in old_runs)
                stats["images_removed"] = self._conn.execute(
                    "SELECT COUNT(*) AS n FROM images WHERE run_id IN "
                    "(%s)" % marks, old_runs,
                ).fetchone()["n"]
            if old_jobs:
                marks = ",".join("?" for _ in old_jobs)
                stats["events_removed"] = self._conn.execute(
                    "SELECT COUNT(*) AS n FROM events WHERE queue_job_id "
                    "IN (%s)" % marks, old_jobs,
                ).fetchone()["n"]
            if dry_run or not (old_runs or old_jobs):
                return stats
            _locked_retry(self._conn, "BEGIN IMMEDIATE")
            try:
                if old_runs:
                    marks = ",".join("?" for _ in old_runs)
                    self._conn.execute(
                        "DELETE FROM runs WHERE run_id IN (%s)" % marks,
                        old_runs,
                    )
                if old_jobs:
                    marks = ",".join("?" for _ in old_jobs)
                    self._conn.execute(
                        "DELETE FROM events WHERE queue_job_id IN (%s)"
                        % marks, old_jobs,
                    )
                    self._conn.execute(
                        "DELETE FROM queue_jobs WHERE job_id IN (%s)"
                        % marks, old_jobs,
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("VACUUM")
        return stats


def _locked_retry(conn, sql):
    """Run ``sql`` with bounded retry on ``database is locked``.

    ``busy_timeout`` already makes sqlite wait for a competing writer;
    this adds a second, bounded line of defence (deadline expiry under
    heavy cross-process contention) with exponential backoff and
    deterministic jitter, so concurrent daemons/CLIs never surface a
    raw :class:`sqlite3.OperationalError` on the first collision.
    """
    for attempt in range(LOCK_RETRIES):
        try:
            conn.execute(sql)
            return
        except sqlite3.OperationalError as exc:
            text = str(exc)
            if "locked" not in text and "busy" not in text:
                raise
            if attempt == LOCK_RETRIES - 1:
                raise
            key = ("%s:%d" % (sql, attempt)).encode("utf-8")
            jitter = (zlib.crc32(key) % 1000) / 1000.0
            time.sleep(LOCK_RETRY_BASE * (2 ** attempt) * (1.0 + jitter))


class _Transaction:
    """``BEGIN IMMEDIATE`` ... ``COMMIT``/``ROLLBACK`` under the lock,
    with bounded lock-retry on both boundary statements."""

    def __init__(self, db):
        self.db = db

    def __enter__(self):
        self.db._lock.acquire()
        try:
            _locked_retry(self.db._conn, "BEGIN IMMEDIATE")
        except BaseException:
            self.db._lock.release()
            raise
        return self.db._conn

    def __exit__(self, exc_type, exc, tb):
        try:
            if exc_type is None:
                try:
                    _locked_retry(self.db._conn, "COMMIT")
                except sqlite3.OperationalError:
                    # Leave the connection clean before surfacing.
                    self.db._conn.execute("ROLLBACK")
                    raise
            else:
                self.db._conn.execute("ROLLBACK")
        finally:
            self.db._lock.release()
        return False


def _dumps(document):
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _file_size(path):
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


# ---------------------------------------------------------------------------
# Migration (``dtaint results migrate`` / ``export``).


def migrate_output_dir(db, out_dir):
    """Import a JSON ``--out`` directory into the sqlite store.

    Reads ``fleet.json`` (optional), every ``images/*.json``, and the
    auxiliary ``delta.json`` / ``diffcheck.json`` documents; inserts
    them verbatim as one run.  Returns ``(run_id, counts)``.  The
    import is lossless: :meth:`ResultsDB.export_run` reproduces every
    document exactly.
    """
    if not os.path.isdir(out_dir):
        raise PipelineError("not an output directory: %s" % out_dir)
    rollup = _load_json(os.path.join(out_dir, "fleet.json"))
    image_docs = []
    images_dir = os.path.join(out_dir, "images")
    if os.path.isdir(images_dir):
        for name in sorted(os.listdir(images_dir)):
            if name.endswith(".json"):
                image_docs.append(
                    _load_json(os.path.join(images_dir, name))
                )
    documents = {}
    for name in ("delta.json", "diffcheck.json"):
        document = _load_json(os.path.join(out_dir, name))
        if document is not None:
            documents[name] = document
    if rollup is None and not image_docs and not documents:
        raise PipelineError("nothing to migrate in %s" % out_dir)
    run_id = db.import_run(
        rollup or {}, image_docs, documents,
        kind="migrated", source=os.path.abspath(out_dir),
    )
    return run_id, {
        "images": len(image_docs),
        "documents": len(documents),
        "rollup": int(rollup is not None),
    }


def export_run_dir(db, run_id, out_dir):
    """Write one run back out as the JSON directory layout.

    The inverse of :func:`migrate_output_dir`: files are serialised
    with the same ``indent=2, sort_keys=True`` the JSON store uses, so
    a migrate → export round trip is byte-identical.
    """
    exported = db.export_run(run_id)
    os.makedirs(os.path.join(out_dir, "images"), exist_ok=True)
    written = []
    if exported["rollup"]:
        written.append(_write_json(
            os.path.join(out_dir, "fleet.json"), exported["rollup"]
        ))
    for job_id, document in exported["images"].items():
        written.append(_write_json(
            os.path.join(out_dir, "images", "%s.json" % job_id), document
        ))
    for name, document in exported["documents"].items():
        written.append(_write_json(os.path.join(out_dir, name), document))
    return written


def _load_json(path):
    try:
        with open(path, "r") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except ValueError as exc:
        raise PipelineError("unreadable results document %s: %s"
                            % (path, exc))


def _write_json(path, document):
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return path
