"""Deterministic, seedable in-analysis fault injection.

The analysis layers carry fixed **probe points** — one ``check(site,
target)`` call per isolation boundary (per function, per file).  With
no injector installed a probe is a single global read, so production
runs pay nothing.  Chaos tests install a :class:`FaultInjector` built
from :class:`FaultSpec` records; when a probe's ``(site, target)``
matches an armed spec the corresponding typed fault from
:mod:`repro.errors` is raised *at that exact point*, exercising the
same degradation paths a real decode bug or malformed file would.

Probe sites
-----------

======================  ============================  ==================
site                    target                        faults
======================  ============================  ==================
``cfg``                 function name                 decode, lift
``cfg.lift``            function name                 lift (mid-build)
``symexec``             function name                 symexec
``symexec.deadline``    function name                 deadline
``interproc``           function name                 symexec
``detect``              function name                 symexec
``loader``              file label (may be empty)     malformed
``firmware.unpack``     file label (may be empty)     malformed
``firmware.file``       filesystem path               malformed
``results``             output file basename          malformed
``service.claim``       queue batch label             kill9
``service.dispatch``    queue batch label             kill9
``service.publish``     queue batch label             kill9
``service.api``         request path                  disconnect
======================  ============================  ==================

Beyond the typed exception faults there are two **action faults** for
service chaos: ``kill9`` delivers an un-catchable ``SIGKILL`` to the
current process at the probe (modelling a daemon killed mid-claim /
mid-publish), and ``disconnect`` raises ``ConnectionResetError``
(modelling a client connection torn mid-response).  Both fire through
the same spec/shots machinery, so a chaos sweep arms them exactly like
any analysis fault.

Determinism: a spec either names its target exactly or uses ``*``
(first eligible probe at that site).  :func:`pick_target` maps an
integer seed onto a candidate list, so a CI sweep over seeds walks the
corpus deterministically — same seed, same victim, same degraded
output, every run.

Spec string form (CLI / :class:`~repro.pipeline.scheduler.FleetJob`):
``fault@site:target``, e.g. ``decode@cfg:handle_request`` or
``malformed@firmware.file:/bin/httpd``.
"""

import os
import signal
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExceeded,
    DecodeFault,
    LiftFault,
    MalformedInput,
    ResourceExhausted,
    SymexecFault,
)

FAULT_CLASSES = {
    "decode": DecodeFault,
    "lift": LiftFault,
    "symexec": SymexecFault,
    "deadline": DeadlineExceeded,
    "malformed": MalformedInput,
    "resource": ResourceExhausted,
}

# Action faults do something to the process instead of raising a typed
# analysis error: service chaos points.
ACTION_FAULTS = ("kill9", "disconnect")

MATCH_ANY = "*"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: which type, at which probe, hitting what."""

    fault: str                 # key into FAULT_CLASSES
    site: str                  # probe site name
    target: str = MATCH_ANY    # exact target, or '*' for first eligible

    def __post_init__(self):
        if self.fault not in FAULT_CLASSES and self.fault not in ACTION_FAULTS:
            raise ValueError(
                "unknown fault %r (choices: %s)"
                % (self.fault,
                   ", ".join(sorted(FAULT_CLASSES) + sorted(ACTION_FAULTS)))
            )

    @classmethod
    def parse(cls, text):
        """Parse the ``fault@site:target`` string form."""
        head, _, target = text.partition(":")
        fault, sep, site = head.partition("@")
        if not sep or not fault or not site:
            raise ValueError(
                "bad fault spec %r (expected fault@site[:target])" % text
            )
        return cls(fault=fault, site=site, target=target or MATCH_ANY)

    def describe(self):
        return "%s@%s:%s" % (self.fault, self.site, self.target)


@dataclass
class FiredFault:
    """A record of one injection that actually happened."""

    spec: FaultSpec
    target: str
    count: int = 1


class FaultInjector:
    """Matches probe calls against armed specs and raises typed faults.

    Each spec fires at most ``shots`` times (default once), so a fault
    degrades exactly its target and the rest of the run proceeds
    clean.  ``fired`` keeps the audit trail the chaos tests assert on.
    """

    def __init__(self, specs, shots=1):
        self.specs = [
            FaultSpec.parse(s) if isinstance(s, str) else s for s in specs
        ]
        self.shots = shots
        self._remaining = {spec: shots for spec in self.specs}
        self.fired = []

    @classmethod
    def parse(cls, spec_strings, shots=1):
        return cls([FaultSpec.parse(s) for s in spec_strings], shots=shots)

    def check(self, site, target=""):
        for spec in self.specs:
            if spec.site != site or self._remaining[spec] <= 0:
                continue
            if spec.target != MATCH_ANY and spec.target != target:
                continue
            self._remaining[spec] -= 1
            self.fired.append(
                FiredFault(spec=spec, target=target or spec.target)
            )
            if spec.fault == "kill9":
                # Un-catchable hard death at this exact point: the
                # chaos harness asserts durable state recovers.
                os.kill(os.getpid(), signal.SIGKILL)
            if spec.fault == "disconnect":
                raise ConnectionResetError(
                    "injected dropped connection at %s" % site
                )
            raise FAULT_CLASSES[spec.fault](
                "injected %s fault at %s" % (spec.fault, site),
                **_fault_kwargs(spec.fault, target),
            )

    def fired_specs(self):
        return [f.spec.describe() for f in self.fired]


def _fault_kwargs(fault, target):
    if fault == "malformed":
        return {"path": target or None}
    return {"function": target or None}


# ---------------------------------------------------------------------------
# Process-global installation.  Workers are separate processes, so one
# slot per process is exactly one slot per analysis.

_ACTIVE = None


def install(injector):
    """Arm ``injector`` for this process; returns it."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall():
    global _ACTIVE
    _ACTIVE = None


def active():
    return _ACTIVE


def check(site, target=""):
    """Probe call; no-op unless an injector is installed."""
    if _ACTIVE is not None:
        _ACTIVE.check(site, target)


class injected:
    """``with injected(["decode@cfg:f3"]):`` — scoped installation."""

    def __init__(self, specs, shots=1):
        self.injector = (
            specs if isinstance(specs, FaultInjector)
            else FaultInjector(specs, shots=shots)
        )

    def __enter__(self):
        return install(self.injector)

    def __exit__(self, *exc):
        uninstall()


def pick_target(candidates, seed):
    """Deterministic seeded choice: seed ``k`` -> the ``k mod n``-th
    candidate in sorted order.  The chaos sweep maps its seed range
    onto functions/files with this, so every seed names one victim and
    the full sweep covers the corpus."""
    ordered = sorted(candidates)
    if not ordered:
        raise ValueError("no candidates to pick a fault target from")
    return ordered[seed % len(ordered)]
