"""The comparison baseline: a top-down, context-sensitive, iterative
interprocedural DDG in the style of angr's (paper §V-B, Table VII).

Where DTaint analyses each function once and pushes definitions
bottom-up, the baseline walks the call graph from the roots down,
re-analysing every callee under each calling context (a truncated
callsite chain), tracking *every* variable (registers included), and
iterating to a fixpoint — the behaviour the paper identifies as the
source of angr's orders-of-magnitude slower DDG construction.
"""

from repro.baseline.topdown import TopDownDDG

__all__ = ["TopDownDDG"]
