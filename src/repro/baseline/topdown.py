"""Top-down worklist DDG construction (the angr-style baseline).

The paper (§V-B): "Angr leverages a worklist-based and iterative
approach to generate interprocedural data flows ... it builds data
dependence on every variable (in the register and memory).  When the
binary complexity is high, it needs to repeatedly build the data flows
for the same block and function with different context."

This module reproduces exactly that cost model on our substrate:

* traversal starts at call-graph roots and descends to callees;
* a function is analysed once per *context* — the last
  ``context_depth`` callsites of the chain that reached it — so shared
  helpers are re-analysed many times;
* the per-function symbolic analysis is re-run from scratch for every
  (function, context) pair (no summary reuse), with register-level
  definition tracking enabled;
* the def-use graph is built over every recorded definition, and the
  whole pass iterates until no context produces new definitions.
"""

import time
from dataclasses import dataclass, field

import networkx as nx

from repro.symexec import SymbolicEngine
from repro.symexec.value import SymDeref, derefs_in, walk


@dataclass
class DDGStats:
    contexts_analyzed: int = 0
    reanalyses: int = 0          # analyses beyond the first per function
    definitions: int = 0
    edges: int = 0
    iterations: int = 0
    ssa_seconds: float = 0.0
    ddg_seconds: float = 0.0


@dataclass
class TopDownDDG:
    """Builds the baseline DDG for one binary."""

    binary: object
    functions: dict                 # name -> Function (CFGs built)
    call_graph: object
    context_depth: int = 2
    max_contexts_per_function: int = 24
    max_total_contexts: int = 2000  # global budget (keeps benches finite)
    max_iterations: int = 3
    max_fanin: int = 8             # def-use edges chased per dependency
    max_edges_per_context: int = 20000
    stats: DDGStats = field(default_factory=DDGStats)
    graph: object = None
    # (name, context) -> raw per-context summary, filled by build().
    # Differential tooling (repro.diffcheck) derives the baseline's
    # vulnerability verdicts from these.
    analyzed: dict = field(default_factory=dict)

    def roots(self):
        """Functions nobody calls (analysis entry points)."""
        roots = []
        for name, function in self.functions.items():
            if function.is_import:
                continue
            callers = [
                c for c in self.call_graph.callers(name)
                if not self.functions[c].is_import
            ] if name in self.call_graph.graph else []
            if not callers:
                roots.append(name)
        return roots or [
            name for name, function in self.functions.items()
            if not function.is_import
        ][:1]

    # ------------------------------------------------------------------

    def build(self):
        """Run the full baseline; returns the def-use graph."""
        engine = SymbolicEngine(self.binary, track_register_defs=True)
        started = time.perf_counter()

        analyzed = {}           # (name, context) -> summary
        seen_per_function = {}  # name -> context count

        def analyze(name, context):
            function = self.functions.get(name)
            if function is None or function.is_import:
                return None
            if self.stats.contexts_analyzed >= self.max_total_contexts:
                return None
            count = seen_per_function.get(name, 0)
            if count >= self.max_contexts_per_function:
                return None
            seen_per_function[name] = count + 1
            self.stats.contexts_analyzed += 1
            if count:
                self.stats.reanalyses += 1
            # Re-run the symbolic analysis from scratch: this is the
            # per-context cost the paper attributes to angr.
            summary = engine.analyze_function(function)
            analyzed[(name, context)] = summary
            return summary

        for iteration in range(self.max_iterations):
            self.stats.iterations += 1
            changed = False
            worklist = [(name, ()) for name in self.roots()]
            visited = set()
            while worklist:
                name, context = worklist.pop()
                if (name, context) in visited:
                    continue
                visited.add((name, context))
                if (name, context) in analyzed and iteration == 0:
                    summary = analyzed[(name, context)]
                else:
                    summary = analyze(name, context)
                    if summary is not None:
                        changed = True
                if summary is None:
                    continue
                for callsite in summary.callsites:
                    if not isinstance(callsite.target, str):
                        continue
                    callee = self.functions.get(callsite.target)
                    if callee is None or callee.is_import:
                        continue
                    new_context = (context + (callsite.addr,))[
                        -self.context_depth:
                    ]
                    worklist.append((callsite.target, new_context))
            if not changed:
                break
        self.stats.ssa_seconds = time.perf_counter() - started
        self.analyzed = analyzed

        started = time.perf_counter()
        self.graph = self._link_definitions(analyzed)
        self.stats.ddg_seconds = time.perf_counter() - started
        self.stats.edges = self.graph.number_of_edges()
        return self.graph

    # ------------------------------------------------------------------

    def _link_definitions(self, analyzed):
        """Def-use linking over every variable in every context."""
        graph = nx.DiGraph()
        for (name, context), summary in analyzed.items():
            defs_by_var = {}    # defined location -> [(node, value)]
            defs_by_value = {}  # produced value    -> [node]
            node_id = 0

            def add_def(var, site, value):
                nonlocal node_id
                node = (name, context, "def", node_id)
                node_id += 1
                graph.add_node(node, var=var, site=site)
                defs_by_var.setdefault(var, []).append((node, value))
                if value is not None:
                    defs_by_value.setdefault(value, []).append(node)
                self.stats.definitions += 1
                return node

            for pair in summary.def_pairs:
                add_def(pair.dest, pair.site, pair.value)
            for reg, site, value in summary.register_defs:
                add_def(("reg", reg, site), site, value)

            # Link every definition whose value mentions either a
            # defined location or a value another definition produced —
            # the per-context def-use pass angr's DDG performs over
            # registers and memory alike.
            edges_here = 0
            for var, entries in defs_by_var.items():
                if edges_here >= self.max_edges_per_context:
                    break
                for node, value in entries:
                    if value is None:
                        continue
                    for dep in self._mentioned_vars(value):
                        sources = (
                            [n for n, _ in defs_by_var.get(dep, ())]
                            + defs_by_value.get(dep, [])
                        )[:self.max_fanin]
                        for other_node in sources:
                            if other_node != node:
                                graph.add_edge(other_node, node)
                                edges_here += 1
        return graph

    @staticmethod
    def _mentioned_vars(value):
        mentioned = list(derefs_in(value))
        mentioned.extend(
            node for node in walk(value)
            if not isinstance(node, SymDeref)
        )
        return mentioned
