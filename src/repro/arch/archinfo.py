"""Architecture facade.

:class:`ArchInfo` bundles everything the loader, CFG recovery, symbolic
engine and emulator need to know about a target: register names, the
calling convention, endianness, and the assemble/disassemble/lift entry
points.  The paper targets the two architectures that dominate embedded
firmware — 32-bit ARM (little-endian) and 32-bit MIPS (big-endian).
"""

from dataclasses import dataclass, field

ARCH_ARM = "arm"
ARCH_MIPS = "mips"


@dataclass(frozen=True)
class CallingConvention:
    """Registers used to pass arguments and results.

    ``arg_regs`` are the first argument registers in order; additional
    arguments live on the stack at ``sp + stack_arg_offset + 4*i``.
    """

    arg_regs: tuple
    ret_reg: str
    sp_reg: str
    ra_reg: str          # link/return-address register
    pc_reg: str
    stack_arg_offset: int = 0
    max_args: int = 10   # the paper models arg0..arg9


@dataclass(frozen=True)
class ArchInfo:
    name: str
    bits: int
    endness: str                      # 'little' | 'big'
    instruction_size: int
    register_names: tuple
    cc: CallingConvention
    has_delay_slots: bool = False
    elf_machine: int = 0
    flag_registers: tuple = field(default=())

    @property
    def is_big_endian(self):
        return self.endness == "big"

    def assembler(self):
        if self.name == ARCH_ARM:
            from repro.arch.arm.assembler import ArmAssembler

            return ArmAssembler()
        from repro.arch.mips.assembler import MipsAssembler

        return MipsAssembler()

    def disassembler(self):
        if self.name == ARCH_ARM:
            from repro.arch.arm.disassembler import ArmDisassembler

            return ArmDisassembler()
        from repro.arch.mips.disassembler import MipsDisassembler

        return MipsDisassembler()

    def lifter(self):
        if self.name == ARCH_ARM:
            from repro.arch.arm.lifter import ArmLifter

            return ArmLifter()
        from repro.arch.mips.lifter import MipsLifter

        return MipsLifter()


_ARM_REGS = tuple("r%d" % i for i in range(16))
_ARM = ArchInfo(
    name=ARCH_ARM,
    bits=32,
    endness="little",
    instruction_size=4,
    register_names=_ARM_REGS,
    cc=CallingConvention(
        arg_regs=("r0", "r1", "r2", "r3"),
        ret_reg="r0",
        sp_reg="r13",
        ra_reg="r14",
        pc_reg="r15",
    ),
    has_delay_slots=False,
    elf_machine=40,  # EM_ARM
    flag_registers=("cc_op", "cc_dep1", "cc_dep2", "cc_ndep"),
)

MIPS_REG_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_MIPS = ArchInfo(
    name=ARCH_MIPS,
    bits=32,
    endness="big",
    instruction_size=4,
    register_names=MIPS_REG_NAMES,
    cc=CallingConvention(
        arg_regs=("a0", "a1", "a2", "a3"),
        ret_reg="v0",
        sp_reg="sp",
        ra_reg="ra",
        pc_reg="pc",
        stack_arg_offset=16,  # o32 reserves a 16-byte home area
    ),
    has_delay_slots=True,
    elf_machine=8,  # EM_MIPS
)

_ARCHES = {ARCH_ARM: _ARM, ARCH_MIPS: _MIPS}


def get_arch(name):
    """Return the :class:`ArchInfo` for ``name`` ('arm' or 'mips')."""
    try:
        return _ARCHES[name]
    except KeyError:
        raise ValueError("unknown architecture %r" % name)
