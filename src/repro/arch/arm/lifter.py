"""Lift ARM32 instructions to the VEX-flavoured IR.

Flags use the VEX thunk convention: flag-setting instructions store an
operation tag and its operands into ``cc_op``/``cc_dep1``/``cc_dep2``/
``cc_ndep`` and conditions are recomputed from the thunk.  Within a
block the lifter tracks the thunk values it just wrote, so the common
``cmp; b<cond>`` pairing produces a direct comparison expression (this
is what makes branch constraints legible to the sanitization checker);
across blocks it falls back to an ITE dispatch over ``Get(cc_op)``.

Semantics are exact, including shifter carry-out, so lifted blocks can
be differentially tested against the independent emulator in
:mod:`repro.emu`.
"""

from repro.arch.arm import encoding as enc
from repro.errors import LiftError
from repro.ir.expr import Binop, Const, Get, ITE, Load, Ops, Unop
from repro.ir.irsb import IRBuilder, JumpKind
from repro.ir.stmt import Exit, Put, Store

# cc_op tags.
CC_SUB = 1
CC_ADD = 2
CC_LOGIC = 3

_ZERO = Const(0)
_ONE = Const(1)


def _reg(index):
    return "r%d" % index


def _and(a, b):
    return Binop(Ops.AND, a, b)


def _or(a, b):
    return Binop(Ops.OR, a, b)


def _not_flag(a):
    return Binop(Ops.CMP_EQ, a, _ZERO)


def _sign_bit(expr):
    return Binop(Ops.SHR, expr, Const(31))


class _Thunk:
    """Flag thunk value as known at the current lift position."""

    def __init__(self, op, dep1, dep2, ndep):
        self.op = op          # int tag or None when unknown
        self.dep1 = dep1
        self.dep2 = dep2
        self.ndep = ndep

    @classmethod
    def unknown(cls):
        return cls(None, Get("cc_dep1"), Get("cc_dep2"), Get("cc_ndep"))


def _sub_flags(cond, a, b):
    """Condition expression after ``cmp a, b`` / flag-setting sub."""
    name = enc.CONDITIONS[cond]
    result = Binop(Ops.SUB, a, b)
    if name == "eq":
        return Binop(Ops.CMP_EQ, a, b)
    if name == "ne":
        return Binop(Ops.CMP_NE, a, b)
    if name == "cs":
        return Binop(Ops.CMP_LE_U, b, a)
    if name == "cc":
        return Binop(Ops.CMP_LT_U, a, b)
    if name == "mi":
        return Binop(Ops.CMP_LT_S, result, _ZERO)
    if name == "pl":
        return Binop(Ops.CMP_LE_S, _ZERO, result)
    if name == "vs":
        overflow = _and(Binop(Ops.XOR, a, b), Binop(Ops.XOR, a, result))
        return _sign_bit(overflow)
    if name == "vc":
        overflow = _and(Binop(Ops.XOR, a, b), Binop(Ops.XOR, a, result))
        return _not_flag(_sign_bit(overflow))
    if name == "hi":
        return Binop(Ops.CMP_LT_U, b, a)
    if name == "ls":
        return Binop(Ops.CMP_LE_U, a, b)
    if name == "ge":
        return Binop(Ops.CMP_LE_S, b, a)
    if name == "lt":
        return Binop(Ops.CMP_LT_S, a, b)
    if name == "gt":
        return Binop(Ops.CMP_LT_S, b, a)
    if name == "le":
        return Binop(Ops.CMP_LE_S, a, b)
    raise LiftError("condition %r after sub" % name)


def _add_flags(cond, a, b):
    name = enc.CONDITIONS[cond]
    result = Binop(Ops.ADD, a, b)
    n_flag = Binop(Ops.CMP_LT_S, result, _ZERO)
    z_flag = Binop(Ops.CMP_EQ, result, _ZERO)
    c_flag = Binop(Ops.CMP_LT_U, result, a)
    v_flag = _sign_bit(
        _and(
            Binop(Ops.XOR, a, Unop(Ops.NOT, b)),
            Binop(Ops.XOR, a, result),
        )
    )
    table = {
        "eq": z_flag,
        "ne": _not_flag(z_flag),
        "cs": c_flag,
        "cc": _not_flag(c_flag),
        "mi": n_flag,
        "pl": _not_flag(n_flag),
        "vs": v_flag,
        "vc": _not_flag(v_flag),
        "hi": _and(c_flag, _not_flag(z_flag)),
        "ls": _or(_not_flag(c_flag), z_flag),
        "ge": Binop(Ops.CMP_EQ, n_flag, v_flag),
        "lt": Binop(Ops.CMP_NE, n_flag, v_flag),
        "gt": _and(_not_flag(z_flag), Binop(Ops.CMP_EQ, n_flag, v_flag)),
        "le": _or(z_flag, Binop(Ops.CMP_NE, n_flag, v_flag)),
    }
    return table[name]


def _logic_flags(cond, result, carry, old_v):
    name = enc.CONDITIONS[cond]
    n_flag = Binop(Ops.CMP_LT_S, result, _ZERO)
    z_flag = Binop(Ops.CMP_EQ, result, _ZERO)
    table = {
        "eq": z_flag,
        "ne": _not_flag(z_flag),
        "cs": carry,
        "cc": _not_flag(carry),
        "mi": n_flag,
        "pl": _not_flag(n_flag),
        "vs": old_v,
        "vc": _not_flag(old_v),
        "hi": _and(carry, _not_flag(z_flag)),
        "ls": _or(_not_flag(carry), z_flag),
        "ge": Binop(Ops.CMP_EQ, n_flag, old_v),
        "lt": Binop(Ops.CMP_NE, n_flag, old_v),
        "gt": _and(_not_flag(z_flag), Binop(Ops.CMP_EQ, n_flag, old_v)),
        "le": _or(z_flag, Binop(Ops.CMP_NE, n_flag, old_v)),
    }
    return table[name]


def condition_expr(cond, thunk):
    """Build a 0/1 guard expression for condition code ``cond``."""
    if cond == enc.COND_AL:
        return _ONE
    if thunk.op == CC_SUB:
        return _sub_flags(cond, thunk.dep1, thunk.dep2)
    if thunk.op == CC_ADD:
        return _add_flags(cond, thunk.dep1, thunk.dep2)
    if thunk.op == CC_LOGIC:
        return _logic_flags(cond, thunk.dep1, thunk.dep2, thunk.ndep)
    # Unknown thunk: dispatch on the recorded cc_op at evaluation time.
    op = Get("cc_op")
    return ITE(
        Binop(Ops.CMP_EQ, op, Const(CC_SUB)),
        _sub_flags(cond, thunk.dep1, thunk.dep2),
        ITE(
            Binop(Ops.CMP_EQ, op, Const(CC_ADD)),
            _add_flags(cond, thunk.dep1, thunk.dep2),
            _logic_flags(cond, thunk.dep1, thunk.dep2, thunk.ndep),
        ),
    )


def carry_expr(thunk):
    """Current carry flag as a 0/1 expression."""
    if thunk.op == CC_SUB:
        return Binop(Ops.CMP_LE_U, thunk.dep2, thunk.dep1)
    if thunk.op == CC_ADD:
        return Binop(Ops.CMP_LT_U, Binop(Ops.ADD, thunk.dep1, thunk.dep2), thunk.dep1)
    if thunk.op == CC_LOGIC:
        return thunk.dep2
    op = Get("cc_op")
    return ITE(
        Binop(Ops.CMP_EQ, op, Const(CC_SUB)),
        Binop(Ops.CMP_LE_U, thunk.dep2, thunk.dep1),
        ITE(
            Binop(Ops.CMP_EQ, op, Const(CC_ADD)),
            Binop(
                Ops.CMP_LT_U, Binop(Ops.ADD, thunk.dep1, thunk.dep2), thunk.dep1
            ),
            thunk.dep2,
        ),
    )


class ArmLifter:
    """Lifts decoded :class:`~repro.arch.arm.encoding.ArmInsn` sequences."""

    arch_name = "arm"

    def lift_block(self, insns, mem_reader=None):
        """Lift ``insns`` (a straight-line run) into one IRSB.

        Lifting stops after the first control-flow instruction.
        ``mem_reader(addr, size)`` may serve read-only memory so
        PC-relative literal loads fold to constants.
        """
        if not insns:
            raise LiftError("cannot lift an empty instruction run")
        builder = IRBuilder(insns[0].addr)
        self._mem_reader = mem_reader
        self._thunk = _Thunk.unknown()

        for index, insn in enumerate(insns):
            builder.imark(insn.addr, 4)
            finished = self._lift_insn(builder, insn)
            if finished is not None:
                return finished
        # Fell off the end of the run: fall through to the next address.
        last = insns[-1]
        return builder.finish(Const(last.addr + 4), JumpKind.BORING)

    # ------------------------------------------------------------------

    def _get(self, builder, index, pc_value):
        if index == enc.PC:
            return Const(pc_value)
        return builder.tmp(Get(_reg(index)))

    def _operand2(self, builder, insn, pc_value):
        """Evaluate operand2; returns (value_expr, carry_expr)."""
        # Carry expressions must be materialised into temporaries *now*:
        # they read the current thunk registers, which a following
        # _set_thunk overwrites, and a Put evaluates its operand at its
        # own position in the statement list.
        if insn.uses_imm:
            value = Const(insn.imm & 0xFFFFFFFF)
            # Rotated immediates with rotation expose bit 31 as carry;
            # we conservatively reuse the old carry for rot == 0 which
            # matches hardware.
            if insn.imm > 0xFF:
                carry = Const((insn.imm >> 31) & 1)
            else:
                carry = builder.tmp(carry_expr(self._thunk))
            return value, carry
        rm = self._get(builder, insn.rm, pc_value)
        stype, amount = insn.shift_type, insn.shift_amount
        if amount == 0 and stype == 0:
            return rm, builder.tmp(carry_expr(self._thunk))
        if stype == 0:  # lsl
            value = Binop(Ops.SHL, rm, Const(amount))
            carry = _and(Binop(Ops.SHR, rm, Const(32 - amount)), _ONE)
        elif stype == 1:  # lsr (amount 0 encodes 32)
            eff = amount or 32
            if eff == 32:
                value = _ZERO
                carry = _sign_bit(rm)
            else:
                value = Binop(Ops.SHR, rm, Const(eff))
                carry = _and(Binop(Ops.SHR, rm, Const(eff - 1)), _ONE)
        elif stype == 2:  # asr (amount 0 encodes 32)
            eff = amount or 32
            if eff == 32:
                value = Binop(Ops.SAR, rm, Const(31))
                carry = _sign_bit(rm)
            else:
                value = Binop(Ops.SAR, rm, Const(eff))
                carry = _and(Binop(Ops.SHR, rm, Const(eff - 1)), _ONE)
        else:  # ror
            value = Binop(Ops.ROR, rm, Const(amount))
            carry = _and(Binop(Ops.SHR, rm, Const((amount - 1) % 32)), _ONE)
        return builder.tmp(value), builder.tmp(carry)

    def _set_thunk(self, builder, op, dep1, dep2, ndep=None):
        if ndep is None:
            ndep = _ZERO
        builder.add(Put("cc_op", Const(op)))
        builder.add(Put("cc_dep1", dep1))
        builder.add(Put("cc_dep2", dep2))
        builder.add(Put("cc_ndep", ndep))
        self._thunk = _Thunk(op, dep1, dep2, ndep)

    def _guarded_put(self, builder, insn, reg, value):
        """PUT that honours the instruction's condition code."""
        if insn.cond == enc.COND_AL:
            builder.add(Put(reg, value))
            return
        guard = builder.tmp(condition_expr(insn.cond, self._thunk))
        builder.add(Put(reg, ITE(guard, value, Get(reg))))

    # ------------------------------------------------------------------

    def _lift_insn(self, builder, insn):
        """Lift one instruction; returns a finished IRSB if it ends the block."""
        handler = getattr(self, "_lift_%s" % insn.kind)
        return handler(builder, insn)

    def _lift_dp(self, builder, insn):
        pc_value = insn.addr + 8
        mnem = insn.mnemonic
        op2, shifter_carry = self._operand2(builder, insn, pc_value)
        rn = self._get(builder, insn.rn, pc_value) if insn.rn is not None else None

        if mnem in ("mov", "mvn"):
            result = op2 if mnem == "mov" else Unop(Ops.NOT, op2)
        elif mnem in ("and", "tst"):
            result = _and(rn, op2)
        elif mnem in ("eor", "teq"):
            result = Binop(Ops.XOR, rn, op2)
        elif mnem in ("sub", "cmp"):
            result = Binop(Ops.SUB, rn, op2)
        elif mnem == "rsb":
            result = Binop(Ops.SUB, op2, rn)
        elif mnem in ("add", "cmn"):
            result = Binop(Ops.ADD, rn, op2)
        elif mnem == "adc":
            carry = builder.tmp(carry_expr(self._thunk))
            result = Binop(Ops.ADD, Binop(Ops.ADD, rn, op2), carry)
        elif mnem == "sbc":
            carry = builder.tmp(carry_expr(self._thunk))
            borrow = Binop(Ops.SUB, _ONE, carry)
            result = Binop(Ops.SUB, Binop(Ops.SUB, rn, op2), borrow)
        elif mnem == "rsc":
            carry = builder.tmp(carry_expr(self._thunk))
            borrow = Binop(Ops.SUB, _ONE, carry)
            result = Binop(Ops.SUB, Binop(Ops.SUB, op2, rn), borrow)
        elif mnem == "orr":
            result = _or(rn, op2)
        elif mnem == "bic":
            result = _and(rn, Unop(Ops.NOT, op2))
        else:
            raise LiftError("unhandled data-processing op %r" % mnem)
        result = builder.tmp(result)

        if insn.set_flags or mnem in enc.DP_COMPARE:
            if mnem in ("cmp", "sub", "rsb"):
                a = rn if mnem != "rsb" else op2
                b = op2 if mnem != "rsb" else rn
                self._set_thunk(builder, CC_SUB, a, b)
            elif mnem in ("cmn", "add"):
                self._set_thunk(builder, CC_ADD, rn, op2)
            elif mnem in ("adc", "sbc", "rsc"):
                raise LiftError("flag-setting %s unsupported" % mnem)
            else:
                old_v = builder.tmp(self._v_flag_expr())
                self._set_thunk(builder, CC_LOGIC, result, shifter_carry, old_v)

        if mnem in enc.DP_COMPARE:
            return None
        if insn.rd == enc.PC:
            if insn.cond != enc.COND_AL:
                raise LiftError("conditional PC write unsupported")
            kind = JumpKind.RET if insn.is_return() else JumpKind.BORING
            return builder.finish(result, kind)
        self._guarded_put(builder, insn, _reg(insn.rd), result)
        return None

    def _v_flag_expr(self):
        """Current V flag as a 0/1 expression (for logic-op thunks)."""
        thunk = self._thunk
        if thunk.op == CC_SUB:
            result = Binop(Ops.SUB, thunk.dep1, thunk.dep2)
            return _sign_bit(
                _and(
                    Binop(Ops.XOR, thunk.dep1, thunk.dep2),
                    Binop(Ops.XOR, thunk.dep1, result),
                )
            )
        if thunk.op == CC_ADD:
            result = Binop(Ops.ADD, thunk.dep1, thunk.dep2)
            return _sign_bit(
                _and(
                    Binop(Ops.XOR, thunk.dep1, Unop(Ops.NOT, thunk.dep2)),
                    Binop(Ops.XOR, thunk.dep1, result),
                )
            )
        if thunk.op == CC_LOGIC:
            return thunk.ndep
        op = Get("cc_op")
        sub_v = _sign_bit(
            _and(
                Binop(Ops.XOR, thunk.dep1, thunk.dep2),
                Binop(Ops.XOR, thunk.dep1, Binop(Ops.SUB, thunk.dep1, thunk.dep2)),
            )
        )
        add_v = _sign_bit(
            _and(
                Binop(Ops.XOR, thunk.dep1, Unop(Ops.NOT, thunk.dep2)),
                Binop(Ops.XOR, thunk.dep1, Binop(Ops.ADD, thunk.dep1, thunk.dep2)),
            )
        )
        return ITE(
            Binop(Ops.CMP_EQ, op, Const(CC_SUB)),
            sub_v,
            ITE(Binop(Ops.CMP_EQ, op, Const(CC_ADD)), add_v, thunk.ndep),
        )

    def _lift_mul(self, builder, insn):
        rm = self._get(builder, insn.rm, insn.addr + 8)
        rs = self._get(builder, insn.rs, insn.addr + 8)
        result = builder.tmp(Binop(Ops.MUL, rm, rs))
        if insn.set_flags:
            old_v = builder.tmp(self._v_flag_expr())
            old_c = builder.tmp(carry_expr(self._thunk))
            self._set_thunk(builder, CC_LOGIC, result, old_c, old_v)
        self._guarded_put(builder, insn, _reg(insn.rd), result)
        return None

    def _mem_address(self, builder, insn, pc_value):
        base = self._get(builder, insn.rn, pc_value)
        if insn.uses_imm:
            if insn.imm == 0:
                return base
            op = Ops.ADD if insn.u_bit else Ops.SUB
            return builder.tmp(Binop(op, base, Const(insn.imm)))
        offset = self._get(builder, insn.rm, pc_value)
        if insn.shift_amount:
            shift_op = [Ops.SHL, Ops.SHR, Ops.SAR, Ops.ROR][insn.shift_type]
            offset = builder.tmp(Binop(shift_op, offset, Const(insn.shift_amount)))
        op = Ops.ADD if insn.u_bit else Ops.SUB
        return builder.tmp(Binop(op, base, offset))

    def _lift_mem(self, builder, insn):
        pc_value = insn.addr + 8
        size = 1 if insn.byte else 4
        addr = self._mem_address(builder, insn, pc_value)
        if insn.load:
            # Fold PC-relative literal loads into constants when the
            # loader can serve the bytes (read-only sections).
            value = None
            if (
                insn.rn == enc.PC
                and insn.uses_imm
                and self._mem_reader is not None
            ):
                literal_addr = pc_value + (insn.imm if insn.u_bit else -insn.imm)
                literal = self._mem_reader(literal_addr, size)
                if literal is not None:
                    value = Const(literal, size)
            if value is None:
                value = Load(addr, size)
            if size == 1:
                value = Unop(Ops.U8_TO_32, value) if not isinstance(
                    value, Const
                ) else value
            value = builder.tmp(value)
            if insn.rd == enc.PC:
                if insn.cond != enc.COND_AL:
                    raise LiftError("conditional load to PC unsupported")
                return builder.finish(value, JumpKind.BORING)
            self._guarded_put(builder, insn, _reg(insn.rd), value)
            return None
        if insn.cond != enc.COND_AL:
            raise LiftError("conditional stores unsupported")
        data = self._get(builder, insn.rd, pc_value)
        if size == 1:
            data = builder.tmp(Unop(Ops.TO_8, data))
        builder.add(Store(addr, data, size))
        return None

    def _lift_memh(self, builder, insn):
        pc_value = insn.addr + 8
        addr = self._mem_address(builder, insn, pc_value)
        if insn.load:
            size = 2 if insn.halfword else 1
            value = builder.tmp(Load(addr, size, signed=insn.signed))
            if not insn.signed:
                value = builder.tmp(Unop(Ops.U16_TO_32, value))
            self._guarded_put(builder, insn, _reg(insn.rd), value)
            return None
        if insn.cond != enc.COND_AL:
            raise LiftError("conditional stores unsupported")
        data = builder.tmp(Unop(Ops.TO_16, self._get(builder, insn.rd, pc_value)))
        builder.add(Store(addr, data, 2))
        return None

    def _lift_block(self, builder, insn):
        if insn.cond != enc.COND_AL:
            raise LiftError("conditional ldm/stm unsupported")
        base = self._get(builder, insn.rn, insn.addr + 8)
        count = len(insn.reglist)
        # Lowest register is always transferred to/from the lowest address:
        #   IA: base .. base+4(n-1)      IB: base+4 .. base+4n
        #   DA: base-4(n-1) .. base      DB: base-4n .. base-4
        if insn.u_bit:
            start_delta = 4 if insn.p_bit else 0
        else:
            start_delta = -4 * count if insn.p_bit else -4 * (count - 1)

        loaded_pc = None
        for i, reg_index in enumerate(insn.reglist):
            delta = start_delta + 4 * i
            if delta == 0:
                slot = base
            elif delta > 0:
                slot = builder.tmp(Binop(Ops.ADD, base, Const(delta)))
            else:
                slot = builder.tmp(Binop(Ops.SUB, base, Const(-delta)))
            if insn.load:
                value = builder.tmp(Load(slot, 4))
                if reg_index == enc.PC:
                    loaded_pc = value
                else:
                    builder.add(Put(_reg(reg_index), value))
            else:
                builder.add(
                    Store(slot, self._get(builder, reg_index, insn.addr + 8), 4)
                )
        if insn.w_bit:
            op = Ops.ADD if insn.u_bit else Ops.SUB
            builder.add(Put(_reg(insn.rn), Binop(op, base, Const(4 * count))))
        if loaded_pc is not None:
            return builder.finish(loaded_pc, JumpKind.RET)
        return None

    def _lift_branch(self, builder, insn):
        target = insn.branch_target()
        if insn.mnemonic == "bl":
            if insn.cond != enc.COND_AL:
                raise LiftError("conditional bl unsupported")
            builder.add(Put(_reg(enc.LR), Const(insn.addr + 4)))
            return builder.finish(
                Const(target), JumpKind.CALL, return_addr=insn.addr + 4
            )
        if insn.cond == enc.COND_AL:
            return builder.finish(Const(target), JumpKind.BORING)
        guard = builder.tmp(condition_expr(insn.cond, self._thunk))
        builder.add(Exit(guard, target, JumpKind.BORING))
        return builder.finish(Const(insn.addr + 4), JumpKind.BORING)

    def _lift_bx(self, builder, insn):
        if insn.cond != enc.COND_AL:
            raise LiftError("conditional bx/blx unsupported")
        target = self._get(builder, insn.rm, insn.addr + 8)
        if insn.mnemonic == "blx":
            builder.add(Put(_reg(enc.LR), Const(insn.addr + 4)))
            return builder.finish(
                target, JumpKind.CALL, return_addr=insn.addr + 4
            )
        kind = JumpKind.RET if insn.rm == enc.LR else JumpKind.BORING
        return builder.finish(target, kind)

    def _lift_movw(self, builder, insn):
        self._guarded_put(builder, insn, _reg(insn.rd), Const(insn.imm))
        return None

    def _lift_movt(self, builder, insn):
        low = builder.tmp(_and(Get(_reg(insn.rd)), Const(0xFFFF)))
        value = builder.tmp(_or(low, Const((insn.imm << 16) & 0xFFFFFFFF)))
        self._guarded_put(builder, insn, _reg(insn.rd), value)
        return None
