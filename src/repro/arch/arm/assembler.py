"""Two-pass ARM32 assembler.

Supports the instruction subset in :mod:`repro.arch.arm.encoding`, the
common directives from :mod:`repro.arch.asmlang`, literal pools
(``ldr rd, =expr`` plus ``.ltorg``), label arithmetic in ``.word``, and
register-list syntax for ``push``/``pop``/``ldm``/``stm``.

Comment markers are ``@`` and ``;`` (``#`` introduces immediates).
"""

import re

from repro.arch import asmlang
from repro.arch.arm import encoding as enc
from repro.arch.asmlang import AssembledProgram, parse_int
from repro.errors import AssemblyError
from repro.utils.bits import align_up

_REG_ALIASES = {"sp": 13, "lr": 14, "pc": 15, "ip": 12, "fp": 11, "sl": 10}
_BLOCK_MODES = ("ia", "ib", "da", "db")
_BASES = sorted(
    list(enc.DP_OPCODES)
    + ["mul", "ldr", "str", "ldrb", "strb", "ldrh", "strh", "ldrsb", "ldrsh",
       "ldm", "stm", "push", "pop", "b", "bl", "bx", "blx", "movw", "movt",
       "nop", "adr"]
    + ["ldm%s" % m for m in _BLOCK_MODES]
    + ["stm%s" % m for m in _BLOCK_MODES],
    key=len,
    reverse=True,
)
_NO_FLAGS = frozenset(
    ["b", "bl", "bx", "blx", "ldr", "str", "ldrb", "strb", "ldrh", "strh",
     "ldrsb", "ldrsh", "ldm", "stm", "push", "pop", "movw", "movt", "nop",
     "adr"]
    + ["ldm%s" % m for m in _BLOCK_MODES]
    + ["stm%s" % m for m in _BLOCK_MODES]
)

_DEFAULT_BASES = {".text": 0x10000, ".rodata": None, ".data": None, ".bss": None}


def parse_register(token, line=None):
    token = token.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    match = re.fullmatch(r"r(\d{1,2})", token)
    if match and int(match.group(1)) < 16:
        return int(match.group(1))
    raise AssemblyError("bad register %r" % token, line)


def _parse_mnemonic(word, line):
    """Split ``word`` into (base, cond, set_flags).

    Suffix parsing is ambiguous (``movvs`` is mov+vs, ``movs`` is
    mov+S, ``subles`` is sub+le+S); every consistent reading of the
    remainder as ``[cond][s]`` is tried.
    """
    word = word.lower()
    for base in _BASES:
        if not word.startswith(base):
            continue
        rest = word[len(base):]
        allows_flags = base not in _NO_FLAGS and base not in enc.DP_COMPARE
        candidates = [(rest, False)]
        if allows_flags and rest.endswith("s"):
            candidates.append((rest[:-1], True))
        for cond_part, flags in candidates:
            if not cond_part:
                return base, enc.COND_AL, flags
            if cond_part in enc.COND_BY_NAME:
                return base, enc.COND_BY_NAME[cond_part], flags
    raise AssemblyError("unknown mnemonic %r" % word, line)


def _split_operands(text):
    """Split an operand string on top-level commas."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch in "[{(":
            depth += 1
        elif ch in "]})":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_reglist(token, line):
    if not (token.startswith("{") and token.endswith("}")):
        raise AssemblyError("expected register list, got %r" % token, line)
    regs = []
    for part in token[1:-1].split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = parse_register(lo_s, line), parse_register(hi_s, line)
            regs.extend(range(lo, hi + 1))
        else:
            regs.append(parse_register(part, line))
    return tuple(sorted(set(regs)))


def _parse_shift(tokens, line):
    """Parse optional trailing ``lsl #n`` shift tokens."""
    if not tokens:
        return 0, 0
    if len(tokens) != 1:
        raise AssemblyError("trailing operands %r" % (tokens,), line)
    parts = tokens[0].split()
    if len(parts) != 2 or parts[0].lower() not in enc.SHIFT_BY_NAME:
        raise AssemblyError("bad shift %r" % tokens[0], line)
    amount_tok = parts[1]
    if not amount_tok.startswith("#"):
        raise AssemblyError("shift amount must be immediate", line)
    amount = parse_int(amount_tok[1:], line)
    stype = enc.SHIFT_BY_NAME[parts[0].lower()]
    if stype == 0 and not 0 <= amount <= 31:
        raise AssemblyError("lsl amount out of range", line)
    if stype in (1, 2) and not 1 <= amount <= 32:
        raise AssemblyError("shift amount out of range", line)
    return stype, amount % 32


class _InsnSpec:
    """A parsed instruction awaiting final encoding.

    ``pool_expr`` is set for ``ldr rd, =expr`` pseudo-instructions;
    ``label_expr`` for branch targets and ``adr``.
    """

    __slots__ = (
        "base", "cond", "flags", "operands", "line",
        "pool_expr", "pool_index", "label_expr",
    )

    def __init__(self, base, cond, flags, operands, line):
        self.base = base
        self.cond = cond
        self.flags = flags
        self.operands = operands
        self.line = line
        self.pool_expr = None
        self.pool_index = None
        self.label_expr = None


class ArmAssembler:
    """Assembles ARM source to absolute-addressed section images."""

    comment_chars = "@;"

    def assemble(self, source, section_bases=None, extern_symbols=None):
        """Assemble ``source``; return an :class:`AssembledProgram`."""
        parsed = asmlang.parse_source(source, self.comment_chars)
        extern_symbols = dict(extern_symbols or {})

        # Pass 1: parse instructions, compute layout per section.
        layouts = {}
        for name, items in parsed.sections.items():
            layouts[name] = self._layout_section(name, items)

        bases = self._place_sections(layouts, section_bases)

        # Collect the symbol table.
        symbols = dict(extern_symbols)
        for name, layout in layouts.items():
            base = bases[name]
            for label, offset in layout["labels"].items():
                if label in symbols:
                    raise AssemblyError("duplicate label %r" % label)
                symbols[label] = base + offset

        # Pass 2: encode.
        sections = {}
        for name, layout in layouts.items():
            data = self._encode_section(layout, bases[name], symbols)
            sections[name] = (bases[name], data)

        return AssembledProgram(
            sections=sections, symbols=symbols, exported=set(parsed.exported)
        )

    # ------------------------------------------------------------------
    # Pass 1.

    def _layout_section(self, name, items):
        records = []        # (offset, size, kind, payload)
        labels = {}
        offset = 0
        pool = []           # pending literal expressions (deduped)

        def flush_pool():
            nonlocal offset, pool
            if not pool:
                return
            records.append((offset, 4 * len(pool), "pool", list(pool)))
            offset += 4 * len(pool)
            pool = []

        for item in items:
            if item.kind == "label":
                labels[item.text] = offset
            elif item.kind == "insn":
                spec = self._parse_insn(item.text, item.line)
                if spec.pool_expr is not None:
                    if spec.pool_expr not in pool:
                        pool.append(spec.pool_expr)
                    spec.pool_index = pool.index(spec.pool_expr)
                records.append((offset, 4, "insn", spec))
                offset += 4
            elif item.kind == "ltorg":
                flush_pool()
            elif item.kind == "align":
                boundary = 1 << parse_int(item.args[0], item.line)
                new_offset = align_up(offset, boundary)
                if new_offset != offset:
                    records.append((offset, new_offset - offset, "zeros", None))
                offset = new_offset
            elif item.kind == "space":
                size = parse_int(item.args[0], item.line)
                records.append((offset, size, "zeros", None))
                offset += size
            elif item.kind == "string":
                data = item.text.encode("latin-1")
                records.append((offset, len(data), "bytes", data))
                offset += len(data)
            elif item.kind in ("word", "half", "byte"):
                width = {"word": 4, "half": 2, "byte": 1}[item.kind]
                size = width * len(item.args)
                records.append(
                    (offset, size, "ints", (width, item.args, item.line))
                )
                offset += size
            else:
                raise AssemblyError("unhandled item %r" % item.kind, item.line)
        flush_pool()
        return {"records": records, "labels": labels, "size": offset}

    def _place_sections(self, layouts, section_bases):
        bases = {}
        cursor = None
        for name in asmlang.SECTIONS:
            requested = (section_bases or {}).get(name)
            if requested is not None:
                bases[name] = requested
                cursor = requested + layouts[name]["size"]
                continue
            if cursor is None:
                cursor = _DEFAULT_BASES[".text"]
            bases[name] = align_up(cursor, 0x1000) if layouts[name]["size"] else cursor
            cursor = bases[name] + layouts[name]["size"]
        return bases

    # ------------------------------------------------------------------
    # Instruction parsing.

    def _parse_insn(self, text, line):
        parts = text.split(None, 1)
        base, cond, flags = _parse_mnemonic(parts[0], line)
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        spec = _InsnSpec(base, cond, flags, operands, line)
        if base == "ldr" and operands and operands[-1].startswith("="):
            spec.pool_expr = operands[-1][1:].strip()
        elif base in ("b", "bl"):
            if len(operands) != 1:
                raise AssemblyError("branch needs one target", line)
            spec.label_expr = operands[0]
        elif base == "adr":
            if len(operands) != 2:
                raise AssemblyError("adr needs rd, label", line)
            spec.label_expr = operands[1]
        return spec

    # ------------------------------------------------------------------
    # Pass 2.

    def _encode_section(self, layout, base, symbols):
        out = bytearray(layout["size"])
        pool_bases = {}
        for offset, size, kind, payload in layout["records"]:
            if kind == "pool":
                pool_bases[id(payload)] = (offset, payload)

        # Map each pooled expression occurrence to its literal address.
        pools_in_order = [
            (offset, payload)
            for offset, size, kind, payload in layout["records"]
            if kind == "pool"
        ]

        def pool_addr_for(record_offset, expr):
            for pool_offset, exprs in pools_in_order:
                if pool_offset >= record_offset and expr in exprs:
                    return base + pool_offset + 4 * exprs.index(expr)
            raise AssemblyError("no literal pool after offset 0x%x" % record_offset)

        for offset, size, kind, payload in layout["records"]:
            addr = base + offset
            if kind == "insn":
                word = self._encode_insn(
                    payload, addr, symbols,
                    pool_addr_for(offset, payload.pool_expr)
                    if payload.pool_expr is not None else None,
                )
                out[offset:offset + 4] = word.to_bytes(4, "little")
            elif kind == "pool":
                for i, expr in enumerate(payload):
                    value = asmlang.eval_symbol_expr(expr, symbols) & 0xFFFFFFFF
                    out[offset + 4 * i:offset + 4 * i + 4] = value.to_bytes(
                        4, "little"
                    )
            elif kind == "bytes":
                out[offset:offset + size] = payload
            elif kind == "ints":
                width, args, line = payload
                for i, arg in enumerate(args):
                    value = asmlang.eval_symbol_expr(arg, symbols, line)
                    value &= (1 << (8 * width)) - 1
                    out[offset + width * i:offset + width * (i + 1)] = (
                        value.to_bytes(width, "little")
                    )
            # 'zeros' records stay zero-filled.
        return bytes(out)

    def _encode_insn(self, spec, addr, symbols, pool_addr):
        base, cond, flags, ops, line = (
            spec.base, spec.cond, spec.flags, spec.operands, spec.line
        )
        insn = None
        if base == "nop":
            insn = enc.ArmInsn(kind="dp", mnemonic="mov", cond=cond, rd=0, rm=0)
        elif base in enc.DP_BY_NAME:
            insn = self._build_dp(base, cond, flags, ops, line)
        elif base == "mul":
            rd = parse_register(ops[0], line)
            rm = parse_register(ops[1], line)
            rs = parse_register(ops[2], line)
            insn = enc.ArmInsn(
                kind="mul", mnemonic="mul", cond=cond, set_flags=flags,
                rd=rd, rm=rm, rs=rs,
            )
        elif base in ("ldr", "str", "ldrb", "strb") and spec.pool_expr is None:
            insn = self._build_mem(base, cond, ops, line)
        elif base == "ldr" and spec.pool_expr is not None:
            rd = parse_register(ops[0], line)
            delta = pool_addr - (addr + 8)
            insn = enc.ArmInsn(
                kind="mem", mnemonic="ldr", cond=cond, load=True,
                rd=rd, rn=enc.PC, imm=abs(delta), uses_imm=True,
                u_bit=delta >= 0,
            )
        elif base in ("ldrh", "strh", "ldrsb", "ldrsh"):
            insn = self._build_memh(base, cond, ops, line)
        elif base in ("push", "pop") or base.startswith(("ldm", "stm")):
            insn = self._build_block(base, cond, ops, line)
        elif base in ("b", "bl"):
            target = asmlang.eval_symbol_expr(spec.label_expr, symbols, line)
            delta = target - (addr + 8)
            if delta % 4:
                raise AssemblyError("unaligned branch target", line)
            insn = enc.ArmInsn(
                kind="branch", mnemonic=base, cond=cond, imm=delta >> 2,
            )
        elif base in ("bx", "blx"):
            insn = enc.ArmInsn(
                kind="bx", mnemonic=base, cond=cond,
                rm=parse_register(ops[0], line),
            )
        elif base in ("movw", "movt"):
            rd = parse_register(ops[0], line)
            tok = ops[1]
            if tok.startswith("#"):
                tok = tok[1:]
            shift = 0
            if tok.startswith(":upper16:"):
                tok, shift = tok[len(":upper16:"):], 16
            elif tok.startswith(":lower16:"):
                tok = tok[len(":lower16:"):]
            value = asmlang.eval_symbol_expr(tok, symbols, line)
            value = (value >> shift) & 0xFFFF
            insn = enc.ArmInsn(kind=base, mnemonic=base, cond=cond, rd=rd, imm=value)
        elif base == "adr":
            rd = parse_register(ops[0], line)
            target = asmlang.eval_symbol_expr(spec.label_expr, symbols, line)
            delta = target - (addr + 8)
            mnem = "add" if delta >= 0 else "sub"
            insn = enc.ArmInsn(
                kind="dp", mnemonic=mnem, cond=cond, rd=rd, rn=enc.PC,
                imm=abs(delta), uses_imm=True,
            )
        if insn is None:
            raise AssemblyError("cannot assemble %r" % base, line)
        try:
            return enc.encode(insn)
        except AssemblyError as exc:
            raise AssemblyError(str(exc), line)

    def _build_dp(self, base, cond, flags, ops, line):
        if base in enc.DP_COMPARE:
            rd, rn, rest = None, parse_register(ops[0], line), ops[1:]
        elif base in enc.DP_UNARY:
            rd, rn, rest = parse_register(ops[0], line), None, ops[1:]
        else:
            rd = parse_register(ops[0], line)
            rn = parse_register(ops[1], line)
            rest = ops[2:]
        if not rest:
            raise AssemblyError("missing operand2", line)
        op2 = rest[0]
        if op2.startswith("#"):
            imm = parse_int(op2[1:], line)
            if imm < 0:
                # Canonicalise negative immediates where an equivalent exists.
                if base == "add":
                    base, imm = "sub", -imm
                elif base == "sub":
                    base, imm = "add", -imm
                elif base == "cmp":
                    base, imm = "cmn", -imm
                elif base == "mov":
                    base, imm = "mvn", ~imm & 0xFFFFFFFF
                else:
                    imm &= 0xFFFFFFFF
            return enc.ArmInsn(
                kind="dp", mnemonic=base, cond=cond, set_flags=flags,
                rd=rd, rn=rn, imm=imm, uses_imm=True,
            )
        rm = parse_register(op2, line)
        stype, samount = _parse_shift(rest[1:], line)
        return enc.ArmInsn(
            kind="dp", mnemonic=base, cond=cond, set_flags=flags,
            rd=rd, rn=rn, rm=rm, uses_imm=False,
            shift_type=stype, shift_amount=samount % 32,
        )

    def _parse_mem_operand(self, token, line):
        if not (token.startswith("[") and token.endswith("]")):
            raise AssemblyError("expected memory operand, got %r" % token, line)
        inner = _split_operands(token[1:-1])
        rn = parse_register(inner[0], line)
        if len(inner) == 1:
            return dict(rn=rn, imm=0, uses_imm=True, u_bit=True,
                        shift_type=0, shift_amount=0, rm=None)
        second = inner[1]
        if second.startswith("#"):
            imm = parse_int(second[1:], line)
            return dict(rn=rn, imm=abs(imm), uses_imm=True, u_bit=imm >= 0,
                        shift_type=0, shift_amount=0, rm=None)
        u_bit = True
        if second.startswith("-"):
            u_bit = False
            second = second[1:]
        rm = parse_register(second, line)
        stype, samount = _parse_shift(inner[2:], line)
        return dict(rn=rn, imm=None, uses_imm=False, u_bit=u_bit,
                    shift_type=stype, shift_amount=samount, rm=rm)

    def _build_mem(self, base, cond, ops, line):
        rd = parse_register(ops[0], line)
        mem = self._parse_mem_operand(ops[1], line)
        return enc.ArmInsn(
            kind="mem", mnemonic=base, cond=cond,
            load=base.startswith("ldr"), byte=base.endswith("b"),
            rd=rd, **mem,
        )

    def _build_memh(self, base, cond, ops, line):
        rd = parse_register(ops[0], line)
        mem = self._parse_mem_operand(ops[1], line)
        if not mem["uses_imm"]:
            raise AssemblyError("halfword transfers need immediate offsets", line)
        signed = "s" in base[3:]
        halfword = base.endswith("h")
        return enc.ArmInsn(
            kind="memh", mnemonic=base, cond=cond, load=base.startswith("ldr"),
            signed=signed, halfword=halfword, rd=rd, rn=mem["rn"],
            imm=mem["imm"], uses_imm=True, u_bit=mem["u_bit"],
        )

    def _build_block(self, base, cond, ops, line):
        if base == "push":
            reglist = _parse_reglist(ops[0], line)
            return enc.ArmInsn(
                kind="block", mnemonic="stm", cond=cond, load=False,
                rn=enc.SP, reglist=reglist, p_bit=True, u_bit=False, w_bit=True,
            )
        if base == "pop":
            reglist = _parse_reglist(ops[0], line)
            return enc.ArmInsn(
                kind="block", mnemonic="ldm", cond=cond, load=True,
                rn=enc.SP, reglist=reglist, p_bit=False, u_bit=True, w_bit=True,
            )
        mode = base[3:] or "ia"
        p_bit = mode in ("ib", "db")
        u_bit = mode in ("ia", "ib")
        rn_tok = ops[0]
        w_bit = rn_tok.endswith("!")
        if w_bit:
            rn_tok = rn_tok[:-1]
        reglist = _parse_reglist(ops[1], line)
        return enc.ArmInsn(
            kind="block", mnemonic=base[:3], cond=cond, load=base.startswith("ldm"),
            rn=parse_register(rn_tok, line), reglist=reglist,
            p_bit=p_bit, u_bit=u_bit, w_bit=w_bit,
        )
