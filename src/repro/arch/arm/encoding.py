"""ARM32 instruction encodings.

Implements the genuine A32 encodings for the subset of the ISA that
embedded firmware analysis needs: data-processing (register and
immediate forms with barrel-shifter), multiply, word/byte loads and
stores (immediate and register offsets), halfword and signed loads,
load/store multiple (push/pop), branches (``b``/``bl``), register
branches (``bx``/``blx``), and the ARMv7 ``movw``/``movt`` wide moves.

The decoded form is :class:`ArmInsn`; :func:`encode` and
:func:`decode` round-trip through 32-bit instruction words.
"""

from dataclasses import dataclass, field

from repro.errors import AssemblyError, DisassemblyError
from repro.utils.bits import bit, bits, ror32, sign_extend

# Condition codes, in encoding order.
CONDITIONS = (
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le", "al",
)
COND_AL = 14
COND_BY_NAME = {name: i for i, name in enumerate(CONDITIONS)}
COND_BY_NAME["hs"] = COND_BY_NAME["cs"]
COND_BY_NAME["lo"] = COND_BY_NAME["cc"]

# Data-processing opcodes, in encoding order.
DP_OPCODES = (
    "and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
    "tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn",
)
DP_BY_NAME = {name: i for i, name in enumerate(DP_OPCODES)}
DP_COMPARE = frozenset(["tst", "teq", "cmp", "cmn"])       # no Rd, always S
DP_UNARY = frozenset(["mov", "mvn"])                       # no Rn

SHIFT_NAMES = ("lsl", "lsr", "asr", "ror")
SHIFT_BY_NAME = {name: i for i, name in enumerate(SHIFT_NAMES)}

PC = 15
LR = 14
SP = 13


@dataclass
class ArmInsn:
    """One decoded ARM instruction.

    ``kind`` selects which of the optional fields are meaningful:

    * ``dp``      — data-processing: rd, rn, and either ``imm`` (with
      ``uses_imm``) or rm/shift_type/shift_amount
    * ``mul``     — rd = rm * rs
    * ``mem``     — ldr/str[b]: rd, rn, imm or rm offset, ``u_bit``
    * ``memh``    — ldrh/strh/ldrsb/ldrsh: rd, rn, imm offset
    * ``block``   — ldm/stm: rn, reglist, p/u/w bits
    * ``branch``  — b/bl: signed word ``imm`` offset (pre-pipeline)
    * ``bx``      — bx/blx via rm
    * ``movw``/``movt`` — rd, 16-bit ``imm``
    """

    kind: str
    mnemonic: str
    cond: int = COND_AL
    set_flags: bool = False
    rd: int = None
    rn: int = None
    rm: int = None
    rs: int = None
    imm: int = None
    uses_imm: bool = False
    shift_type: int = 0
    shift_amount: int = 0
    u_bit: bool = True
    byte: bool = False
    load: bool = False
    signed: bool = False
    halfword: bool = False
    reglist: tuple = field(default_factory=tuple)
    p_bit: bool = False
    w_bit: bool = False
    addr: int = 0
    raw: int = 0

    @property
    def length(self):
        return 4

    def branch_target(self):
        """Absolute target of a ``b``/``bl`` at ``self.addr``."""
        if self.kind != "branch":
            raise ValueError("not a branch: %s" % self.mnemonic)
        return (self.addr + 8 + (self.imm << 2)) & 0xFFFFFFFF

    def is_call(self):
        return self.mnemonic in ("bl", "blx")

    def is_return(self):
        # ``bx lr`` or ``pop {... pc}``
        if self.kind == "bx" and self.mnemonic == "bx" and self.rm == LR:
            return True
        if self.kind == "block" and self.load and PC in self.reglist:
            return True
        if (
            self.kind == "dp"
            and self.mnemonic == "mov"
            and self.rd == PC
            and not self.uses_imm
            and self.rm == LR
        ):
            return True
        return False

    def text(self):
        """Render canonical assembly syntax (round-trips via assembler)."""
        cond = "" if self.cond == COND_AL else CONDITIONS[self.cond]
        s = "s" if self.set_flags and self.mnemonic not in DP_COMPARE else ""
        name = self.mnemonic + cond + s

        def reg(i):
            return {13: "sp", 14: "lr", 15: "pc"}.get(i, "r%d" % i)

        if self.kind == "dp":
            if self.uses_imm:
                op2 = "#0x%x" % self.imm
            else:
                op2 = reg(self.rm)
                if self.shift_amount:
                    op2 += ", %s #%d" % (
                        SHIFT_NAMES[self.shift_type],
                        self.shift_amount,
                    )
            if self.mnemonic in DP_COMPARE:
                return "%s %s, %s" % (name, reg(self.rn), op2)
            if self.mnemonic in DP_UNARY:
                return "%s %s, %s" % (name, reg(self.rd), op2)
            return "%s %s, %s, %s" % (name, reg(self.rd), reg(self.rn), op2)
        if self.kind == "mul":
            return "%s %s, %s, %s" % (name, reg(self.rd), reg(self.rm), reg(self.rs))
        if self.kind in ("mem", "memh"):
            sign = "" if self.u_bit else "-"
            if self.uses_imm:
                if self.imm:
                    mem = "[%s, #%s0x%x]" % (reg(self.rn), sign, self.imm)
                else:
                    mem = "[%s]" % reg(self.rn)
            else:
                mem = "[%s, %s%s]" % (reg(self.rn), sign, reg(self.rm))
                if self.shift_amount:
                    mem = mem[:-1] + ", %s #%d]" % (
                        SHIFT_NAMES[self.shift_type],
                        self.shift_amount,
                    )
            return "%s %s, %s" % (name, reg(self.rd), mem)
        if self.kind == "block":
            regs = ", ".join(reg(i) for i in self.reglist)
            if self.rn == SP and self.w_bit:
                if not self.load and self.p_bit and not self.u_bit:
                    return "%s {%s}" % ("push" + cond, regs)
                if self.load and not self.p_bit and self.u_bit:
                    return "%s {%s}" % ("pop" + cond, regs)
            mode = {
                (False, True): "ia", (True, True): "ib",
                (False, False): "da", (True, False): "db",
            }[(self.p_bit, self.u_bit)]
            return "%s%s %s%s, {%s}" % (
                name, mode, reg(self.rn), "!" if self.w_bit else "", regs
            )
        if self.kind == "branch":
            return "%s 0x%x" % (name, self.branch_target())
        if self.kind == "bx":
            return "%s %s" % (name, reg(self.rm))
        if self.kind in ("movw", "movt"):
            return "%s %s, #0x%x" % (name, reg(self.rd), self.imm)
        raise ValueError("unrenderable kind %r" % self.kind)


def encode_imm12(value):
    """Encode ``value`` as an ARM rotated 8-bit immediate.

    Returns the 12-bit encoding or ``None`` when unencodable.
    """
    value &= 0xFFFFFFFF
    for rot in range(16):
        imm8 = ror32(value, 32 - rot * 2) if rot else value
        if imm8 <= 0xFF:
            return (rot << 8) | imm8
    return None


def decode_imm12(field12):
    rot = bits(field12, 11, 8)
    imm8 = bits(field12, 7, 0)
    return ror32(imm8, rot * 2)


def encode(insn):
    """Encode an :class:`ArmInsn` to its 32-bit instruction word."""
    cond = insn.cond << 28
    if insn.kind == "dp":
        opcode = DP_BY_NAME[insn.mnemonic]
        s = 1 if (insn.set_flags or insn.mnemonic in DP_COMPARE) else 0
        rn = insn.rn if insn.rn is not None else 0
        rd = insn.rd if insn.rd is not None else 0
        word = cond | (opcode << 21) | (s << 20) | (rn << 16) | (rd << 12)
        if insn.uses_imm:
            imm12 = encode_imm12(insn.imm)
            if imm12 is None:
                raise AssemblyError(
                    "immediate 0x%x not encodable as rotated imm8" % insn.imm
                )
            return word | (1 << 25) | imm12
        sh = (insn.shift_amount << 7) | (insn.shift_type << 5)
        return word | sh | insn.rm
    if insn.kind == "mul":
        return (
            cond
            | ((1 if insn.set_flags else 0) << 20)
            | (insn.rd << 16)
            | (insn.rs << 8)
            | 0x90
            | insn.rm
        )
    if insn.kind == "mem":
        word = (
            cond
            | (1 << 26)
            | (1 << 24)                       # P=1 (offset addressing)
            | ((1 if insn.u_bit else 0) << 23)
            | ((1 if insn.byte else 0) << 22)
            | ((1 if insn.load else 0) << 20)
            | (insn.rn << 16)
            | (insn.rd << 12)
        )
        if insn.uses_imm:
            if not 0 <= insn.imm <= 0xFFF:
                raise AssemblyError("ldr/str offset 0x%x out of range" % insn.imm)
            return word | insn.imm
        sh = (insn.shift_amount << 7) | (insn.shift_type << 5)
        return word | (1 << 25) | sh | insn.rm
    if insn.kind == "memh":
        if not 0 <= insn.imm <= 0xFF:
            raise AssemblyError("halfword offset 0x%x out of range" % insn.imm)
        s_bit = 1 if insn.signed else 0
        h_bit = 1 if insn.halfword else 0
        return (
            cond
            | (1 << 24)                       # P=1
            | ((1 if insn.u_bit else 0) << 23)
            | (1 << 22)                       # immediate form
            | ((1 if insn.load else 0) << 20)
            | (insn.rn << 16)
            | (insn.rd << 12)
            | ((insn.imm >> 4) << 8)
            | 0x90
            | (s_bit << 6)
            | (h_bit << 5)
            | (insn.imm & 0xF)
        )
    if insn.kind == "block":
        mask = 0
        for r in insn.reglist:
            mask |= 1 << r
        return (
            cond
            | (1 << 27)
            | ((1 if insn.p_bit else 0) << 24)
            | ((1 if insn.u_bit else 0) << 23)
            | ((1 if insn.w_bit else 0) << 21)
            | ((1 if insn.load else 0) << 20)
            | (insn.rn << 16)
            | mask
        )
    if insn.kind == "branch":
        link = 1 if insn.mnemonic == "bl" else 0
        return cond | (5 << 25) | (link << 24) | (insn.imm & 0xFFFFFF)
    if insn.kind == "bx":
        base = 0x012FFF10 if insn.mnemonic == "bx" else 0x012FFF30
        return cond | base | insn.rm
    if insn.kind == "movw":
        return (
            cond | (0x30 << 20) | ((insn.imm >> 12) << 16)
            | (insn.rd << 12) | (insn.imm & 0xFFF)
        )
    if insn.kind == "movt":
        return (
            cond | (0x34 << 20) | ((insn.imm >> 12) << 16)
            | (insn.rd << 12) | (insn.imm & 0xFFF)
        )
    raise AssemblyError("cannot encode kind %r" % insn.kind)


def decode(word, addr=0):
    """Decode a 32-bit instruction word into an :class:`ArmInsn`."""
    cond = bits(word, 31, 28)
    if cond == 15:
        raise DisassemblyError("unconditional (NV) space at 0x%x" % addr)
    group = bits(word, 27, 25)

    if group == 0:
        # BX / BLX.
        if word & 0x0FFFFFD0 == 0x012FFF10:
            mnem = "bx" if not bit(word, 5) else "blx"
            return ArmInsn(
                kind="bx", mnemonic=mnem, cond=cond,
                rm=bits(word, 3, 0), addr=addr, raw=word,
            )
        # Multiply.
        if bits(word, 24, 21) == 0 and bits(word, 7, 4) == 0b1001:
            return ArmInsn(
                kind="mul", mnemonic="mul", cond=cond,
                set_flags=bool(bit(word, 20)),
                rd=bits(word, 19, 16), rs=bits(word, 11, 8),
                rm=bits(word, 3, 0), addr=addr, raw=word,
            )
        # Halfword / signed transfers.
        if bit(word, 7) and bit(word, 4) and bits(word, 6, 5) != 0:
            if not bit(word, 22):
                raise DisassemblyError(
                    "register-offset halfword transfer at 0x%x" % addr
                )
            s_bit, h_bit = bit(word, 6), bit(word, 5)
            load = bool(bit(word, 20))
            if load:
                mnem = {(0, 1): "ldrh", (1, 0): "ldrsb", (1, 1): "ldrsh"}[
                    (s_bit, h_bit)
                ]
            else:
                if (s_bit, h_bit) != (0, 1):
                    raise DisassemblyError("bad store-half encoding at 0x%x" % addr)
                mnem = "strh"
            return ArmInsn(
                kind="memh", mnemonic=mnem, cond=cond,
                load=load, signed=bool(s_bit), halfword=bool(h_bit),
                rd=bits(word, 15, 12), rn=bits(word, 19, 16),
                imm=(bits(word, 11, 8) << 4) | bits(word, 3, 0),
                uses_imm=True, u_bit=bool(bit(word, 23)),
                addr=addr, raw=word,
            )
        # Data-processing, register operand2.
        if bit(word, 4) and bit(word, 7):
            raise DisassemblyError("unhandled media/extra encoding at 0x%x" % addr)
        opcode = bits(word, 24, 21)
        s = bool(bit(word, 20))
        if opcode in (8, 9, 10, 11) and not s:
            raise DisassemblyError("MRS/MSR space at 0x%x" % addr)
        if bit(word, 4):
            raise DisassemblyError(
                "register-specified shift unsupported at 0x%x" % addr
            )
        mnem = DP_OPCODES[opcode]
        return ArmInsn(
            kind="dp", mnemonic=mnem, cond=cond, set_flags=s,
            rd=None if mnem in DP_COMPARE else bits(word, 15, 12),
            rn=None if mnem in DP_UNARY else bits(word, 19, 16),
            rm=bits(word, 3, 0), uses_imm=False,
            shift_type=bits(word, 6, 5), shift_amount=bits(word, 11, 7),
            addr=addr, raw=word,
        )

    if group == 1:
        opcode = bits(word, 24, 21)
        s = bool(bit(word, 20))
        if opcode == 8 and not s:  # MOVW
            imm = (bits(word, 19, 16) << 12) | bits(word, 11, 0)
            return ArmInsn(
                kind="movw", mnemonic="movw", cond=cond,
                rd=bits(word, 15, 12), imm=imm, addr=addr, raw=word,
            )
        if opcode == 10 and not s:  # MOVT
            imm = (bits(word, 19, 16) << 12) | bits(word, 11, 0)
            return ArmInsn(
                kind="movt", mnemonic="movt", cond=cond,
                rd=bits(word, 15, 12), imm=imm, addr=addr, raw=word,
            )
        if opcode in (9, 11) and not s:
            raise DisassemblyError("MSR-immediate space at 0x%x" % addr)
        mnem = DP_OPCODES[opcode]
        return ArmInsn(
            kind="dp", mnemonic=mnem, cond=cond, set_flags=s,
            rd=None if mnem in DP_COMPARE else bits(word, 15, 12),
            rn=None if mnem in DP_UNARY else bits(word, 19, 16),
            imm=decode_imm12(bits(word, 11, 0)), uses_imm=True,
            addr=addr, raw=word,
        )

    if group in (2, 3):
        if group == 3 and bit(word, 4):
            raise DisassemblyError("media instruction at 0x%x" % addr)
        if not bit(word, 24) or bit(word, 21):
            raise DisassemblyError(
                "post-indexed/writeback load-store at 0x%x" % addr
            )
        load = bool(bit(word, 20))
        byte = bool(bit(word, 22))
        mnem = ("ldr" if load else "str") + ("b" if byte else "")
        common = dict(
            kind="mem", mnemonic=mnem, cond=cond, load=load, byte=byte,
            rd=bits(word, 15, 12), rn=bits(word, 19, 16),
            u_bit=bool(bit(word, 23)), addr=addr, raw=word,
        )
        if group == 2:
            return ArmInsn(imm=bits(word, 11, 0), uses_imm=True, **common)
        return ArmInsn(
            rm=bits(word, 3, 0), uses_imm=False,
            shift_type=bits(word, 6, 5), shift_amount=bits(word, 11, 7),
            **common,
        )

    if group == 4:
        load = bool(bit(word, 20))
        reglist = tuple(i for i in range(16) if bit(word, i))
        if not reglist:
            raise DisassemblyError("empty register list at 0x%x" % addr)
        return ArmInsn(
            kind="block", mnemonic="ldm" if load else "stm", cond=cond,
            load=load, rn=bits(word, 19, 16), reglist=reglist,
            p_bit=bool(bit(word, 24)), u_bit=bool(bit(word, 23)),
            w_bit=bool(bit(word, 21)), addr=addr, raw=word,
        )

    if group == 5:
        link = bool(bit(word, 24))
        return ArmInsn(
            kind="branch", mnemonic="bl" if link else "b", cond=cond,
            imm=sign_extend(bits(word, 23, 0), 24), addr=addr, raw=word,
        )

    raise DisassemblyError("unsupported instruction group %d at 0x%x" % (group, addr))
