"""ARM32 disassembler: bytes to :class:`ArmInsn` sequences."""

from repro.arch.arm import encoding as enc
from repro.errors import DisassemblyError


class ArmDisassembler:
    """Decodes little-endian A32 instruction streams."""

    instruction_size = 4

    def disasm_one(self, data, offset, addr):
        """Decode the instruction at ``data[offset:offset+4]``."""
        if offset + 4 > len(data):
            raise DisassemblyError("truncated instruction at 0x%x" % addr)
        word = int.from_bytes(data[offset:offset + 4], "little")
        return enc.decode(word, addr)

    def disasm_range(self, data, base_addr, start=0, end=None):
        """Yield instructions for ``data[start:end]`` at ``base_addr+start``.

        Undecodable words are yielded as ``None`` placeholders so callers
        can skip embedded data (e.g. literal pools) without losing
        addressing.
        """
        end = len(data) if end is None else end
        offset = start
        while offset + 4 <= end:
            addr = base_addr + offset
            try:
                yield self.disasm_one(data, offset, addr)
            except DisassemblyError:
                yield None
            offset += 4
