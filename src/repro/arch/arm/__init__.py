"""ARM32 (ARMv7-A subset, little-endian, no Thumb) support."""
