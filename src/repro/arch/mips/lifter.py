"""Lift MIPS32 instructions to the VEX-flavoured IR.

Branch delay slots are honoured: the condition (and any register jump
target) is evaluated into temporaries *before* the delay-slot
instruction's effects are lifted, matching the architectural semantics
where the slot executes after the condition is decided.
"""

from repro.arch.archinfo import MIPS_REG_NAMES
from repro.arch.mips import encoding as enc
from repro.errors import LiftError
from repro.ir.expr import Binop, Const, Get, Load, Ops, Unop
from repro.ir.irsb import IRBuilder, JumpKind
from repro.ir.stmt import Exit, Put, Store

_ZERO = Const(0)
_RA = MIPS_REG_NAMES.index("ra")


def _reg_name(index):
    return MIPS_REG_NAMES[index]


class MipsLifter:
    """Lifts decoded :class:`~repro.arch.mips.encoding.MipsInsn` runs."""

    arch_name = "mips"

    def lift_block(self, insns, mem_reader=None):
        """Lift ``insns`` into one IRSB (stops after a branch+slot)."""
        if not insns:
            raise LiftError("cannot lift an empty instruction run")
        builder = IRBuilder(insns[0].addr)

        index = 0
        while index < len(insns):
            insn = insns[index]
            if insn.has_delay_slot():
                if index + 1 >= len(insns):
                    raise LiftError(
                        "branch at 0x%x is missing its delay slot" % insn.addr
                    )
                return self._lift_transfer(builder, insn, insns[index + 1])
            builder.imark(insn.addr, 4)
            self._lift_simple(builder, insn)
            index += 1
        last = insns[-1]
        return builder.finish(Const(last.addr + 4), JumpKind.BORING)

    # ------------------------------------------------------------------

    def _get(self, builder, index):
        if index == 0:
            return _ZERO
        return builder.tmp(Get(_reg_name(index)))

    def _put(self, builder, index, value):
        if index != 0:
            builder.add(Put(_reg_name(index), value))

    def _lift_simple(self, builder, insn):
        """Lift one non-control-flow instruction."""
        m = insn.mnemonic
        if insn.kind == "r":
            if m in ("sll", "srl", "sra"):
                op = {"sll": Ops.SHL, "srl": Ops.SHR, "sra": Ops.SAR}[m]
                value = Binop(op, self._get(builder, insn.rt), Const(insn.shamt))
                self._put(builder, insn.rd, builder.tmp(value))
                return
            if m in ("sllv", "srlv", "srav"):
                op = {"sllv": Ops.SHL, "srlv": Ops.SHR, "srav": Ops.SAR}[m]
                amount = builder.tmp(
                    Binop(Ops.AND, self._get(builder, insn.rs), Const(0x1F))
                )
                value = Binop(op, self._get(builder, insn.rt), amount)
                self._put(builder, insn.rd, builder.tmp(value))
                return
            rs = self._get(builder, insn.rs)
            rt = self._get(builder, insn.rt)
            if m == "addu":
                value = Binop(Ops.ADD, rs, rt)
            elif m == "subu":
                value = Binop(Ops.SUB, rs, rt)
            elif m == "and":
                value = Binop(Ops.AND, rs, rt)
            elif m == "or":
                value = Binop(Ops.OR, rs, rt)
            elif m == "xor":
                value = Binop(Ops.XOR, rs, rt)
            elif m == "nor":
                value = Unop(Ops.NOT, Binop(Ops.OR, rs, rt))
            elif m == "slt":
                value = Binop(Ops.CMP_LT_S, rs, rt)
            elif m == "sltu":
                value = Binop(Ops.CMP_LT_U, rs, rt)
            else:
                raise LiftError("unhandled R-type %r" % m)
            self._put(builder, insn.rd, builder.tmp(value))
            return

        if m == "lui":
            self._put(builder, insn.rt, Const((insn.imm & 0xFFFF) << 16))
            return
        if m in ("addiu", "slti", "sltiu", "andi", "ori", "xori"):
            rs = self._get(builder, insn.rs)
            imm = Const(insn.imm & 0xFFFFFFFF)
            op = {
                "addiu": Ops.ADD, "slti": Ops.CMP_LT_S, "sltiu": Ops.CMP_LT_U,
                "andi": Ops.AND, "ori": Ops.OR, "xori": Ops.XOR,
            }[m]
            self._put(builder, insn.rt, builder.tmp(Binop(op, rs, imm)))
            return
        if m in enc.LOADS:
            addr = self._address(builder, insn)
            size = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[m]
            signed = m in ("lb", "lh")
            value = builder.tmp(Load(addr, size, signed=signed))
            self._put(builder, insn.rt, value)
            return
        if m in enc.STORES:
            addr = self._address(builder, insn)
            size = {"sb": 1, "sh": 2, "sw": 4}[m]
            data = self._get(builder, insn.rt)
            if size == 1:
                data = builder.tmp(Unop(Ops.TO_8, data))
            elif size == 2:
                data = builder.tmp(Unop(Ops.TO_16, data))
            builder.add(Store(addr, data, size))
            return
        raise LiftError("unhandled instruction %r" % m)

    def _address(self, builder, insn):
        base = self._get(builder, insn.rs)
        if insn.imm == 0:
            return base
        op = Ops.ADD if insn.imm >= 0 else Ops.SUB
        return builder.tmp(Binop(op, base, Const(abs(insn.imm))))

    # ------------------------------------------------------------------

    def _branch_guard(self, builder, insn):
        m = insn.mnemonic
        rs = self._get(builder, insn.rs)
        if m == "beq":
            return builder.tmp(
                Binop(Ops.CMP_EQ, rs, self._get(builder, insn.rt))
            )
        if m == "bne":
            return builder.tmp(
                Binop(Ops.CMP_NE, rs, self._get(builder, insn.rt))
            )
        if m == "blez":
            return builder.tmp(Binop(Ops.CMP_LE_S, rs, _ZERO))
        if m == "bgtz":
            return builder.tmp(Binop(Ops.CMP_LT_S, _ZERO, rs))
        if m == "bltz":
            return builder.tmp(Binop(Ops.CMP_LT_S, rs, _ZERO))
        if m == "bgez":
            return builder.tmp(Binop(Ops.CMP_LE_S, _ZERO, rs))
        raise LiftError("unhandled branch %r" % m)

    def _lift_transfer(self, builder, insn, slot):
        """Lift a branch/jump plus its delay slot; finishes the block."""
        if slot.has_delay_slot():
            raise LiftError(
                "branch in delay slot at 0x%x is unsupported" % slot.addr
            )
        m = insn.mnemonic
        builder.imark(insn.addr, 4)
        fall_through = insn.addr + 8  # past the delay slot

        if insn.is_branch():
            # Unconditional 'b' is encoded as beq $zero,$zero.
            unconditional = m == "beq" and insn.rs == 0 and insn.rt == 0
            guard = None if unconditional else self._branch_guard(builder, insn)
            builder.imark(slot.addr, 4)
            self._lift_simple(builder, slot)
            target = insn.branch_target()
            if unconditional:
                return builder.finish(Const(target), JumpKind.BORING)
            builder.add(Exit(guard, target, JumpKind.BORING))
            return builder.finish(Const(fall_through), JumpKind.BORING)

        if m == "j":
            builder.imark(slot.addr, 4)
            self._lift_simple(builder, slot)
            return builder.finish(Const(insn.target), JumpKind.BORING)
        if m == "jal":
            self._put(builder, _RA, Const(fall_through))
            builder.imark(slot.addr, 4)
            self._lift_simple(builder, slot)
            return builder.finish(
                Const(insn.target), JumpKind.CALL, return_addr=fall_through
            )
        if m == "jr":
            target = self._get(builder, insn.rs)
            builder.imark(slot.addr, 4)
            self._lift_simple(builder, slot)
            kind = JumpKind.RET if insn.rs == _RA else JumpKind.BORING
            return builder.finish(target, kind)
        if m == "jalr":
            target = self._get(builder, insn.rs)
            self._put(builder, insn.rd, Const(fall_through))
            builder.imark(slot.addr, 4)
            self._lift_simple(builder, slot)
            return builder.finish(
                target, JumpKind.CALL, return_addr=fall_through
            )
        raise LiftError("unhandled transfer %r" % m)
