"""MIPS32 (big-endian, o32 ABI) support with branch delay slots."""
