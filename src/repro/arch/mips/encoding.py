"""MIPS32 instruction encodings (genuine MIPS I/II subset).

R-type ``op=0`` instructions are selected by ``funct``; branches are
relative to the delay-slot address; ``j``/``jal`` are region-absolute.
"""

from dataclasses import dataclass

from repro.arch.archinfo import MIPS_REG_NAMES
from repro.errors import AssemblyError, DisassemblyError
from repro.utils.bits import bits, sign_extend

REG_BY_NAME = {name: i for i, name in enumerate(MIPS_REG_NAMES)}

R_FUNCTS = {
    "sll": 0x00, "srl": 0x02, "sra": 0x03,
    "sllv": 0x04, "srlv": 0x06, "srav": 0x07,
    "jr": 0x08, "jalr": 0x09,
    "addu": 0x21, "subu": 0x23,
    "and": 0x24, "or": 0x25, "xor": 0x26, "nor": 0x27,
    "slt": 0x2A, "sltu": 0x2B,
}
R_BY_FUNCT = {v: k for k, v in R_FUNCTS.items()}

I_OPCODES = {
    "beq": 0x04, "bne": 0x05, "blez": 0x06, "bgtz": 0x07,
    "addiu": 0x09, "slti": 0x0A, "sltiu": 0x0B,
    "andi": 0x0C, "ori": 0x0D, "xori": 0x0E, "lui": 0x0F,
    "lb": 0x20, "lh": 0x21, "lw": 0x23, "lbu": 0x24, "lhu": 0x25,
    "sb": 0x28, "sh": 0x29, "sw": 0x2B,
}
I_BY_OPCODE = {v: k for k, v in I_OPCODES.items()}
LOADS = frozenset(["lb", "lh", "lw", "lbu", "lhu"])
STORES = frozenset(["sb", "sh", "sw"])
BRANCHES = frozenset(["beq", "bne", "blez", "bgtz", "bltz", "bgez"])
# Sign-extended immediates (the rest zero-extend).
SIGNED_IMM = frozenset(
    ["addiu", "slti", "sltiu", "lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw"]
)

J_OPCODES = {"j": 0x02, "jal": 0x03}
OP_REGIMM = 0x01  # bltz (rt=0) / bgez (rt=1)


@dataclass
class MipsInsn:
    """One decoded MIPS instruction.

    ``kind`` is ``'r'``, ``'i'`` or ``'j'``.  ``imm`` is the decoded
    (sign- or zero-extended) immediate for I-types; ``target`` the
    absolute address for J-types.
    """

    kind: str
    mnemonic: str
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0
    addr: int = 0
    raw: int = 0

    @property
    def length(self):
        return 4

    def is_branch(self):
        return self.mnemonic in BRANCHES

    def is_jump(self):
        return self.mnemonic in ("j", "jal", "jr", "jalr")

    def is_call(self):
        return self.mnemonic in ("jal", "jalr")

    def is_return(self):
        return self.mnemonic == "jr" and self.rs == REG_BY_NAME["ra"]

    def has_delay_slot(self):
        return self.is_branch() or self.is_jump()

    def branch_target(self):
        """Absolute target for relative branches."""
        if not self.is_branch():
            raise ValueError("not a branch: %s" % self.mnemonic)
        return (self.addr + 4 + (self.imm << 2)) & 0xFFFFFFFF

    def text(self):
        reg = lambda i: "$%s" % MIPS_REG_NAMES[i]  # noqa: E731
        m = self.mnemonic
        if self.kind == "r":
            if m in ("sll", "srl", "sra"):
                return "%s %s, %s, %d" % (m, reg(self.rd), reg(self.rt), self.shamt)
            if m in ("sllv", "srlv", "srav"):
                return "%s %s, %s, %s" % (m, reg(self.rd), reg(self.rt), reg(self.rs))
            if m == "jr":
                return "jr %s" % reg(self.rs)
            if m == "jalr":
                return "jalr %s, %s" % (reg(self.rd), reg(self.rs))
            return "%s %s, %s, %s" % (m, reg(self.rd), reg(self.rs), reg(self.rt))
        if self.kind == "i":
            if m in LOADS | STORES:
                return "%s %s, %d(%s)" % (m, reg(self.rt), self.imm, reg(self.rs))
            if m == "lui":
                return "lui %s, 0x%x" % (reg(self.rt), self.imm & 0xFFFF)
            if m in ("beq", "bne"):
                return "%s %s, %s, 0x%x" % (
                    m, reg(self.rs), reg(self.rt), self.branch_target()
                )
            if m in ("blez", "bgtz", "bltz", "bgez"):
                return "%s %s, 0x%x" % (m, reg(self.rs), self.branch_target())
            return "%s %s, %s, %d" % (m, reg(self.rt), reg(self.rs), self.imm)
        return "%s 0x%x" % (m, self.target)


def encode(insn):
    """Encode a :class:`MipsInsn` into a 32-bit big-endian word value."""
    m = insn.mnemonic
    if insn.kind == "r":
        funct = R_FUNCTS.get(m)
        if funct is None:
            raise AssemblyError("unknown R-type %r" % m)
        return (
            (insn.rs << 21) | (insn.rt << 16) | (insn.rd << 11)
            | (insn.shamt << 6) | funct
        )
    if insn.kind == "i":
        if m in ("bltz", "bgez"):
            rt = 0 if m == "bltz" else 1
            return (OP_REGIMM << 26) | (insn.rs << 21) | (rt << 16) | (insn.imm & 0xFFFF)
        opcode = I_OPCODES.get(m)
        if opcode is None:
            raise AssemblyError("unknown I-type %r" % m)
        return (
            (opcode << 26) | (insn.rs << 21) | (insn.rt << 16) | (insn.imm & 0xFFFF)
        )
    if insn.kind == "j":
        opcode = J_OPCODES[m]
        return (opcode << 26) | ((insn.target >> 2) & 0x3FFFFFF)
    raise AssemblyError("cannot encode kind %r" % insn.kind)


def decode(word, addr=0):
    """Decode a 32-bit word value into a :class:`MipsInsn`."""
    opcode = bits(word, 31, 26)
    rs = bits(word, 25, 21)
    rt = bits(word, 20, 16)
    if opcode == 0:
        funct = bits(word, 5, 0)
        mnem = R_BY_FUNCT.get(funct)
        if mnem is None:
            raise DisassemblyError("unknown funct 0x%x at 0x%x" % (funct, addr))
        return MipsInsn(
            kind="r", mnemonic=mnem, rs=rs, rt=rt,
            rd=bits(word, 15, 11), shamt=bits(word, 10, 6),
            addr=addr, raw=word,
        )
    if opcode == OP_REGIMM:
        if rt == 0:
            mnem = "bltz"
        elif rt == 1:
            mnem = "bgez"
        else:
            raise DisassemblyError("unknown REGIMM rt=%d at 0x%x" % (rt, addr))
        return MipsInsn(
            kind="i", mnemonic=mnem, rs=rs, rt=0,
            imm=sign_extend(bits(word, 15, 0), 16), addr=addr, raw=word,
        )
    if opcode in (0x02, 0x03):
        mnem = "j" if opcode == 0x02 else "jal"
        target = ((addr + 4) & 0xF0000000) | (bits(word, 25, 0) << 2)
        return MipsInsn(kind="j", mnemonic=mnem, target=target, addr=addr, raw=word)
    mnem = I_BY_OPCODE.get(opcode)
    if mnem is None:
        raise DisassemblyError("unknown opcode 0x%x at 0x%x" % (opcode, addr))
    imm = bits(word, 15, 0)
    if mnem in SIGNED_IMM or mnem in ("beq", "bne", "blez", "bgtz"):
        imm = sign_extend(imm, 16)
    return MipsInsn(
        kind="i", mnemonic=mnem, rs=rs, rt=rt, imm=imm, addr=addr, raw=word
    )
