"""Two-pass MIPS32 (big-endian) assembler.

Pseudo-instructions expand the way GNU ``as`` does:

* ``move rd, rs``      → ``addu rd, rs, $zero``
* ``li rt, imm``       → ``addiu``/``ori``/``lui+ori`` depending on range
* ``la rt, symbol``    → ``lui rt, %hi(sym); addiu rt, rt, %lo(sym)``
* ``b label``          → ``beq $zero, $zero, label``
* ``beqz/bnez rs, l``  → ``beq/bne rs, $zero, l``
* ``nop``              → ``sll $zero, $zero, 0``
* ``jalr rs``          → ``jalr $ra, rs``

``%hi``/``%lo`` use the carry-compensating convention so that
``lui+addiu`` reconstructs the full address.  Branch delay slots are
*not* filled automatically; the code generator emits them explicitly.

Comment markers are ``#`` and ``;``.
"""

import re

from repro.arch import asmlang
from repro.arch.archinfo import MIPS_REG_NAMES
from repro.arch.asmlang import AssembledProgram, parse_int
from repro.arch.mips import encoding as enc
from repro.errors import AssemblyError
from repro.utils.bits import align_up

_REG_BY_NAME = dict(enc.REG_BY_NAME)
_REG_BY_NAME["s8"] = _REG_BY_NAME["fp"]

_MEM_RE = re.compile(r"^(-?\w+|%lo\([^)]+\))\(([^)]+)\)$")
_RELOC_RE = re.compile(r"^%(hi|lo)\(([^)]+)\)$")

_DEFAULT_BASES = {".text": 0x400000, ".rodata": None, ".data": None, ".bss": None}

_SHIFTS = ("sll", "srl", "sra")
_SHIFT_VARS = ("sllv", "srlv", "srav")
_THREE_REG = ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu")
_IMM_OPS = ("addiu", "slti", "sltiu", "andi", "ori", "xori")


def parse_register(token, line=None):
    token = token.strip().lstrip("$").lower()
    if token in _REG_BY_NAME:
        return _REG_BY_NAME[token]
    if token.isdigit() and int(token) < 32:
        return int(token)
    raise AssemblyError("bad register %r" % token, line)


def hi16(value):
    """%hi with carry compensation: lui+addiu reconstructs ``value``."""
    return ((value + 0x8000) >> 16) & 0xFFFF


def lo16(value):
    return value & 0xFFFF


class _InsnSpec:
    __slots__ = ("mnemonic", "operands", "line")

    def __init__(self, mnemonic, operands, line):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line = line


class MipsAssembler:
    """Assembles MIPS source to absolute-addressed section images."""

    comment_chars = "#;"

    def assemble(self, source, section_bases=None, extern_symbols=None):
        parsed = asmlang.parse_source(source, self.comment_chars)
        extern_symbols = dict(extern_symbols or {})

        layouts = {
            name: self._layout_section(items)
            for name, items in parsed.sections.items()
        }
        bases = self._place_sections(layouts, section_bases)

        symbols = dict(extern_symbols)
        for name, layout in layouts.items():
            for label, offset in layout["labels"].items():
                if label in symbols:
                    raise AssemblyError("duplicate label %r" % label)
                symbols[label] = bases[name] + offset

        sections = {}
        for name, layout in layouts.items():
            sections[name] = (
                bases[name],
                self._encode_section(layout, bases[name], symbols),
            )
        return AssembledProgram(
            sections=sections, symbols=symbols, exported=set(parsed.exported)
        )

    # ------------------------------------------------------------------

    def _expand_pseudo(self, mnemonic, ops, line):
        """Expand one source line to a list of primitive _InsnSpec."""
        if mnemonic == "nop":
            return [_InsnSpec("sll", ["$zero", "$zero", "0"], line)]
        if mnemonic == "move":
            return [_InsnSpec("addu", [ops[0], ops[1], "$zero"], line)]
        if mnemonic == "b":
            return [_InsnSpec("beq", ["$zero", "$zero", ops[0]], line)]
        if mnemonic == "beqz":
            return [_InsnSpec("beq", [ops[0], "$zero", ops[1]], line)]
        if mnemonic == "bnez":
            return [_InsnSpec("bne", [ops[0], "$zero", ops[1]], line)]
        if mnemonic == "li":
            value = parse_int(ops[1], line)
            if -0x8000 <= value <= 0x7FFF:
                return [_InsnSpec("addiu", [ops[0], "$zero", str(value)], line)]
            if 0 <= value <= 0xFFFF:
                return [_InsnSpec("ori", [ops[0], "$zero", str(value)], line)]
            low = lo16(value)
            if low >= 0x8000:
                low -= 0x10000
            return [
                _InsnSpec("lui", [ops[0], str(hi16(value))], line),
                _InsnSpec("addiu", [ops[0], ops[0], str(low)], line),
            ]
        if mnemonic == "la":
            return [
                _InsnSpec("lui", [ops[0], "%%hi(%s)" % ops[1]], line),
                _InsnSpec("addiu", [ops[0], ops[0], "%%lo(%s)" % ops[1]], line),
            ]
        if mnemonic == "jalr" and len(ops) == 1:
            return [_InsnSpec("jalr", ["$ra", ops[0]], line)]
        return [_InsnSpec(mnemonic, ops, line)]

    def _layout_section(self, items):
        records = []
        labels = {}
        offset = 0
        for item in items:
            if item.kind == "label":
                labels[item.text] = offset
            elif item.kind == "insn":
                parts = item.text.split(None, 1)
                mnemonic = parts[0].lower()
                ops = (
                    [op.strip() for op in parts[1].split(",")]
                    if len(parts) > 1
                    else []
                )
                for spec in self._expand_pseudo(mnemonic, ops, item.line):
                    records.append((offset, 4, "insn", spec))
                    offset += 4
            elif item.kind == "align":
                boundary = 1 << parse_int(item.args[0], item.line)
                new_offset = align_up(offset, boundary)
                if new_offset != offset:
                    records.append((offset, new_offset - offset, "zeros", None))
                offset = new_offset
            elif item.kind == "space":
                size = parse_int(item.args[0], item.line)
                records.append((offset, size, "zeros", None))
                offset += size
            elif item.kind == "string":
                data = item.text.encode("latin-1")
                records.append((offset, len(data), "bytes", data))
                offset += len(data)
            elif item.kind in ("word", "half", "byte"):
                width = {"word": 4, "half": 2, "byte": 1}[item.kind]
                size = width * len(item.args)
                records.append(
                    (offset, size, "ints", (width, item.args, item.line))
                )
                offset += size
            elif item.kind == "ltorg":
                pass  # ARM-only; harmless no-op on MIPS
            else:
                raise AssemblyError("unhandled item %r" % item.kind, item.line)
        return {"records": records, "labels": labels, "size": offset}

    def _place_sections(self, layouts, section_bases):
        bases = {}
        cursor = None
        for name in asmlang.SECTIONS:
            requested = (section_bases or {}).get(name)
            if requested is not None:
                bases[name] = requested
                cursor = requested + layouts[name]["size"]
                continue
            if cursor is None:
                cursor = _DEFAULT_BASES[".text"]
            bases[name] = align_up(cursor, 0x1000) if layouts[name]["size"] else cursor
            cursor = bases[name] + layouts[name]["size"]
        return bases

    # ------------------------------------------------------------------

    def _imm_value(self, token, symbols, line):
        """Resolve an immediate token, including %hi/%lo relocations."""
        match = _RELOC_RE.match(token.strip())
        if match:
            value = asmlang.eval_symbol_expr(match.group(2), symbols, line)
            if match.group(1) == "hi":
                return hi16(value)
            low = lo16(value)
            return low - 0x10000 if low >= 0x8000 else low
        try:
            return parse_int(token, line)
        except AssemblyError:
            return asmlang.eval_symbol_expr(token, symbols, line)

    def _encode_section(self, layout, base, symbols):
        out = bytearray(layout["size"])
        for offset, size, kind, payload in layout["records"]:
            addr = base + offset
            if kind == "insn":
                word = self._encode_insn(payload, addr, symbols)
                out[offset:offset + 4] = word.to_bytes(4, "big")
            elif kind == "bytes":
                out[offset:offset + size] = payload
            elif kind == "ints":
                width, args, line = payload
                for i, arg in enumerate(args):
                    value = asmlang.eval_symbol_expr(arg, symbols, line)
                    value &= (1 << (8 * width)) - 1
                    out[offset + width * i:offset + width * (i + 1)] = (
                        value.to_bytes(width, "big")
                    )
        return bytes(out)

    def _encode_insn(self, spec, addr, symbols):
        m, ops, line = spec.mnemonic, spec.operands, spec.line
        insn = None
        if m in _SHIFTS:
            insn = enc.MipsInsn(
                kind="r", mnemonic=m,
                rd=parse_register(ops[0], line), rt=parse_register(ops[1], line),
                shamt=parse_int(ops[2], line) & 0x1F,
            )
        elif m in _SHIFT_VARS:
            insn = enc.MipsInsn(
                kind="r", mnemonic=m,
                rd=parse_register(ops[0], line), rt=parse_register(ops[1], line),
                rs=parse_register(ops[2], line),
            )
        elif m in _THREE_REG:
            insn = enc.MipsInsn(
                kind="r", mnemonic=m,
                rd=parse_register(ops[0], line), rs=parse_register(ops[1], line),
                rt=parse_register(ops[2], line),
            )
        elif m == "jr":
            insn = enc.MipsInsn(kind="r", mnemonic="jr",
                                rs=parse_register(ops[0], line))
        elif m == "jalr":
            insn = enc.MipsInsn(
                kind="r", mnemonic="jalr",
                rd=parse_register(ops[0], line), rs=parse_register(ops[1], line),
            )
        elif m in _IMM_OPS:
            imm = self._imm_value(ops[2], symbols, line)
            if m in ("andi", "ori", "xori"):
                if not 0 <= imm <= 0xFFFF:
                    imm &= 0xFFFF
            elif not -0x8000 <= imm <= 0x7FFF:
                raise AssemblyError("immediate %d out of range for %s" % (imm, m), line)
            insn = enc.MipsInsn(
                kind="i", mnemonic=m,
                rt=parse_register(ops[0], line), rs=parse_register(ops[1], line),
                imm=imm,
            )
        elif m == "lui":
            insn = enc.MipsInsn(
                kind="i", mnemonic="lui",
                rt=parse_register(ops[0], line),
                imm=self._imm_value(ops[1], symbols, line) & 0xFFFF,
            )
        elif m in enc.LOADS or m in enc.STORES:
            match = _MEM_RE.match(ops[1].replace(" ", ""))
            if not match:
                raise AssemblyError("bad memory operand %r" % ops[1], line)
            imm = self._imm_value(match.group(1), symbols, line)
            insn = enc.MipsInsn(
                kind="i", mnemonic=m,
                rt=parse_register(ops[0], line),
                rs=parse_register(match.group(2), line),
                imm=imm,
            )
        elif m in ("beq", "bne"):
            target = asmlang.eval_symbol_expr(ops[2], symbols, line)
            insn = enc.MipsInsn(
                kind="i", mnemonic=m,
                rs=parse_register(ops[0], line), rt=parse_register(ops[1], line),
                imm=self._branch_offset(target, addr, line),
            )
        elif m in ("blez", "bgtz", "bltz", "bgez"):
            target = asmlang.eval_symbol_expr(ops[1], symbols, line)
            insn = enc.MipsInsn(
                kind="i", mnemonic=m, rs=parse_register(ops[0], line),
                imm=self._branch_offset(target, addr, line),
            )
        elif m in ("j", "jal"):
            target = asmlang.eval_symbol_expr(ops[0], symbols, line)
            if (target & 0xF0000000) != ((addr + 4) & 0xF0000000):
                raise AssemblyError("jump target out of region", line)
            insn = enc.MipsInsn(kind="j", mnemonic=m, target=target)
        if insn is None:
            raise AssemblyError("unknown mnemonic %r" % m, line)
        try:
            return enc.encode(insn)
        except AssemblyError as exc:
            raise AssemblyError(str(exc), line)

    @staticmethod
    def _branch_offset(target, addr, line):
        delta = target - (addr + 4)
        if delta % 4:
            raise AssemblyError("unaligned branch target", line)
        offset = delta >> 2
        if not -0x8000 <= offset <= 0x7FFF:
            raise AssemblyError("branch target out of range", line)
        return offset
