"""MIPS32 disassembler: big-endian bytes to :class:`MipsInsn`."""

from repro.arch.mips import encoding as enc
from repro.errors import DisassemblyError


class MipsDisassembler:
    """Decodes big-endian MIPS32 instruction streams."""

    instruction_size = 4

    def disasm_one(self, data, offset, addr):
        if offset + 4 > len(data):
            raise DisassemblyError("truncated instruction at 0x%x" % addr)
        word = int.from_bytes(data[offset:offset + 4], "big")
        return enc.decode(word, addr)

    def disasm_range(self, data, base_addr, start=0, end=None):
        """Yield instructions (or ``None`` on undecodable words)."""
        end = len(data) if end is None else end
        offset = start
        while offset + 4 <= end:
            addr = base_addr + offset
            try:
                yield self.disasm_one(data, offset, addr)
            except DisassemblyError:
                yield None
            offset += 4
