"""Architecture support: ARM32 (little-endian) and MIPS32 (big-endian).

Each architecture package provides four layers over genuine machine
encodings:

* ``encoding``      — instruction word pack/unpack
* ``assembler``     — assembly text to bytes (two-pass, with labels)
* ``disassembler``  — bytes to :class:`Instruction` objects
* ``lifter``        — instructions to :mod:`repro.ir` super-blocks

:func:`get_arch` returns the :class:`ArchInfo` facade used by the
loader, CFG recovery and the analyses.
"""

from repro.arch.archinfo import ARCH_ARM, ARCH_MIPS, ArchInfo, get_arch

__all__ = ["ARCH_ARM", "ARCH_MIPS", "ArchInfo", "get_arch"]
