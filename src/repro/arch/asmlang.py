"""Assembly source parsing shared by the ARM and MIPS assemblers.

The parser splits a source file into sections of *items*: labels,
instruction lines and data directives.  Encoding the instruction text
is left to the per-architecture assembler; this module only understands
the line structure and the common directives:

``.section .text`` / ``.text`` / ``.data`` / ``.rodata`` / ``.bss``
    switch the current section,
``.word`` / ``.half`` / ``.byte``
    emit integers (label expressions allowed in ``.word``),
``.asciz`` / ``.ascii``
    emit string bytes (``.asciz`` NUL-terminates),
``.space N``
    emit N zero bytes,
``.align N``
    pad with zeros to a 2**N boundary,
``.globl NAME``
    mark a symbol as exported,
``.ltorg``
    flush the ARM literal pool.
"""

import re
from dataclasses import dataclass, field

from repro.errors import AssemblyError

SECTIONS = (".plt", ".text", ".rodata", ".data", ".bss")

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


@dataclass
class Item:
    """One parsed source item."""

    kind: str        # 'label' | 'insn' | 'word' | 'half' | 'byte'
                     # | 'string' | 'space' | 'align' | 'ltorg'
    text: str = ""
    args: list = field(default_factory=list)
    line: int = 0


def _unescape(raw):
    out = []
    i = 0
    escapes = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"'}
    while i < len(raw):
        ch = raw[i]
        if ch == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            if nxt in escapes:
                out.append(escapes[nxt])
                i += 2
                continue
            if nxt == "x" and i + 3 < len(raw):
                out.append(chr(int(raw[i + 2:i + 4], 16)))
                i += 4
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def strip_comment(line, comment_chars):
    """Remove trailing comments, respecting string literals."""
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif not in_string:
            if ch in comment_chars:
                return line[:i]
            if ch == "/" and line[i:i + 2] == "//":
                return line[:i]
        i += 1
    return line


@dataclass
class ParsedSource:
    """Sections in declaration order plus exported symbol names."""

    sections: dict
    exported: set


def parse_source(source, comment_chars):
    """Parse assembly ``source`` into a :class:`ParsedSource`.

    ``comment_chars`` is a string of single-character comment markers
    ('@;' for ARM, '#;' for MIPS — ARM cannot use '#' because of
    immediate syntax).
    """
    sections = {name: [] for name in SECTIONS}
    exported = set()
    current = ".text"

    for lineno, raw_line in enumerate(source.splitlines(), start=1):
        line = strip_comment(raw_line, comment_chars).strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                sections[current].append(
                    Item("label", text=match.group(1), line=lineno)
                )
                line = line[match.end():].strip()
                continue
            break
        if not line:
            continue

        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0]
            rest = parts[1].strip() if len(parts) > 1 else ""
            if directive == ".section":
                if rest not in SECTIONS:
                    raise AssemblyError("unknown section %r" % rest, lineno)
                current = rest
            elif directive in SECTIONS:
                current = directive
            elif directive in (".word", ".half", ".byte"):
                args = [a.strip() for a in rest.split(",") if a.strip()]
                if not args:
                    raise AssemblyError("%s needs arguments" % directive, lineno)
                sections[current].append(
                    Item(directive[1:], args=args, line=lineno)
                )
            elif directive in (".asciz", ".ascii"):
                match = _STRING_RE.search(rest)
                if not match:
                    raise AssemblyError("%s needs a string" % directive, lineno)
                data = _unescape(match.group(1))
                if directive == ".asciz":
                    data += "\0"
                sections[current].append(
                    Item("string", text=data, line=lineno)
                )
            elif directive == ".space":
                sections[current].append(
                    Item("space", args=[rest], line=lineno)
                )
            elif directive == ".align":
                sections[current].append(
                    Item("align", args=[rest or "2"], line=lineno)
                )
            elif directive in (".globl", ".global"):
                exported.add(rest.split()[0])
            elif directive == ".ltorg":
                sections[current].append(Item("ltorg", line=lineno))
            else:
                raise AssemblyError("unknown directive %r" % directive, lineno)
            continue

        sections[current].append(Item("insn", text=line, line=lineno))

    return ParsedSource(sections=sections, exported=exported)


def parse_int(token, line=None):
    """Parse a numeric literal (decimal, hex, char, optional sign)."""
    token = token.strip()
    try:
        if len(token) == 3 and token[0] == token[2] == "'":
            return ord(token[1])
        return int(token, 0)
    except ValueError:
        raise AssemblyError("bad integer literal %r" % token, line)


def eval_symbol_expr(expr, symbols, line=None):
    """Evaluate ``label``, ``number`` or ``label+number`` expressions."""
    expr = expr.strip()
    for sep in ("+", "-"):
        idx = expr.rfind(sep)
        if idx > 0:
            left, right = expr[:idx].strip(), expr[idx + 1:].strip()
            if left and right and not left[-1] in "+-":
                try:
                    rhs = parse_int(right, line)
                except AssemblyError:
                    continue
                base = eval_symbol_expr(left, symbols, line)
                return (base + rhs) if sep == "+" else (base - rhs)
    try:
        return parse_int(expr, line)
    except AssemblyError:
        pass
    if expr in symbols:
        return symbols[expr]
    raise AssemblyError("undefined symbol %r" % expr, line)


@dataclass
class AssembledProgram:
    """Result of assembling one source file.

    ``sections`` maps section name to ``(base_address, bytes)``;
    ``symbols`` maps every label to its absolute address; ``exported``
    holds ``.globl`` names.
    """

    sections: dict
    symbols: dict
    exported: set

    def section_bytes(self, name):
        return self.sections[name][1]

    def section_base(self, name):
        return self.sections[name][0]

    def flat_image(self):
        """Concatenate sections into (base, bytes) with zero-fill gaps."""
        placed = [(base, data) for base, data in self.sections.values() if data]
        if not placed:
            return 0, b""
        placed.sort()
        start = placed[0][0]
        end = max(base + len(data) for base, data in placed)
        image = bytearray(end - start)
        for base, data in placed:
            image[base - start:base - start + len(data)] = data
        return start, bytes(image)
