#!/usr/bin/env python
"""The paper's running example, Figures 5-7: foo/woo.

Shows the three artefacts the paper draws: the assembly (Fig. 5), the
per-function static symbolic analysis — definition pairs in
``deref(base + offset)`` notation (Fig. 6) — and the interprocedural
data flow from ``recv`` in woo to ``memcpy`` in foo (Fig. 7).

Run:  python examples/foo_woo_dataflow.py
"""

from repro.eval.figures import figure567_foo_woo


def main():
    data = figure567_foo_woo()

    print("=== Figure 5: assembly ===")
    for name in ("foo", "woo"):
        print("<%s>" % name)
        for line in data["assembly"][name]:
            print("  " + line)

    print("\n=== Figure 6: static symbolic analysis (definition pairs) ===")
    for name in ("foo", "woo"):
        print("<%s>" % name)
        for line in data["definitions"][name]:
            print("  " + line)

    print("\n=== Figure 7: data flow between recv and memcpy ===")
    for flow in data["data_flow"]:
        print("  %s" % flow)

    report = data["report"]
    assert len(report.vulnerabilities) == 1
    print("\nOK: recv -> deref(arg0+0x4c) -> memcpy recovered, "
          "exactly the paper's Figure 7.")


if __name__ == "__main__":
    main()
