#!/usr/bin/env python
"""End-to-end firmware audit: image blob -> findings (paper §IV).

The full pipeline on a D-Link-style image: a TRX container wrapping a
SimpleFS root filesystem with the ``cgibin`` target is built, then
treated as an opaque blob: signature-scanned, carved, the filesystem
unpacked, the network-facing ELF picked, and DTaint run over it — the
exact sequence the paper describes around its Binwalk-based extractor.

Run:  python examples/firmware_audit.py
"""

from repro.core import DTaint, DTaintConfig
from repro.corpus.profiles import analyzed_module_prefixes, build_firmware
from repro.firmware.binwalk import (
    entropy_profile,
    extract_filesystem,
    pick_target_binary,
    scan,
)
from repro.firmware.image import pack_trx
from repro.firmware.simplefs import SimpleFS
from repro.loader.binary import load_elf


def build_firmware_blob():
    """Pack a DIR-645-style firmware image around the cgibin target."""
    built = build_firmware("dir645", scale=0.15)
    fs = SimpleFS()
    fs.add_dir("/bin")
    fs.add_dir("/etc")
    fs.add_dir("/htdocs")
    fs.add_file("/htdocs/cgibin", built.elf_bytes)
    fs.add_file("/etc/versions", b"DIR-645 1.03\n")
    fs.add_file("/htdocs/index.html", b"<html>router admin</html>")
    kernel_stub = b"\x00" * 256 + b"Linux version 2.6.33 (dlink)" + b"\x00" * 256
    return pack_trx(kernel_stub, fs.pack()), built


def main():
    blob, built = build_firmware_blob()
    print("firmware blob: %d bytes" % len(blob))

    print("\nsignature scan:")
    for hit in scan(blob)[:6]:
        print("  0x%08x  %s" % (hit.offset, hit.description))

    profile = entropy_profile(blob)
    print("entropy: min %.2f, max %.2f bits/byte over %d blocks"
          % (min(profile), max(profile), len(profile)))

    fs, container = extract_filesystem(blob)
    print("\nextracted %s container; filesystem entries:" % container.container)
    for path in fs.paths():
        print("  " + path)

    path, data = pick_target_binary(fs)
    print("\ntarget binary: %s (%d bytes)" % (path, len(data)))

    binary = load_elf(data)
    config = DTaintConfig(modules=analyzed_module_prefixes("dir645"))
    report = DTaint(binary, config=config, name=path).run()
    print()
    print(report.render())

    expected = len(built.expected_vulnerabilities())
    print("\nground truth: %d vulnerable patterns planted, "
          "%d distinct vulnerabilities reported"
          % (expected, len(report.vulnerabilities)))


if __name__ == "__main__":
    main()
