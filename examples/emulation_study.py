#!/usr/bin/env python
"""The Figure 1 emulation study (paper §II-A).

Generates the 6,529-image firmware fleet, attempts a FIRMADYNE-style
boot of every image, and prints the per-year histogram plus the
failure breakdown — reproducing the finding that ~90% of collected
firmware cannot be dynamically analysed, which motivates DTaint's
static approach.

Run:  python examples/emulation_study.py [fleet-size]
"""

import sys

from repro.eval.figures import figure1_emulation, render_figure1


def main():
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 6529
    data = figure1_emulation(size=size)

    print(render_figure1(data))
    print()
    rate = 100.0 * data["emulated"] / data["total"]
    print("emulation rate: %.1f%% (paper: ~10%%)" % rate)
    print("\nwhy boots failed:")
    for stage, count in sorted(
        data["failures"].items(), key=lambda kv: -kv[1]
    ):
        print("  %-14s %5d" % (stage, count))
    availability = data["source_availability"]
    print("\nimages without source code: %d of %d (paper: 5,023 of 6,529)"
          % (availability["no_source"], availability["total"]))


if __name__ == "__main__":
    main()
