#!/usr/bin/env python
"""Heartbleed at the binary level (paper Figures 2-3, §II-B).

The paper's motivating claim: no prior static binary taint analysis
could detect Heartbleed, because the ``n2s`` macro is inlined (no
symbol to anchor on) and the record buffer travels through structure
fields in memory.  This example builds a mini-OpenSSL preserving
exactly those properties, shows the regenerated Figure 3 disassembly,
and walks the pointer-alias + interprocedural flow DTaint recovers.

Run:  python examples/heartbleed.py
"""

from repro.core import DTaint
from repro.corpus.openssl import build_openssl
from repro.symexec.value import pretty


def main():
    built = build_openssl()
    print("mini-OpenSSL: %d functions, %.1f KB ELF"
          % (len(built.binary.local_functions), built.size_kb))

    # Figure 3: the assembly carrying the flow.
    disassembler = built.binary.arch.disassembler()
    for name in ("ssl3_read_n", "tls1_process_heartbeat"):
        symbol = built.binary.functions[name]
        data = built.binary.read_bytes(symbol.addr, symbol.size)
        print("\n<%s>" % name)
        for i, insn in enumerate(disassembler.disasm_range(data, symbol.addr)):
            if insn is not None:
                print("  %08x: %s" % (symbol.addr + 4 * i, insn.text()))

    detector = DTaint(built.binary, name="openssl")
    report = detector.run()

    print("\nkey interprocedural definition pairs (in ssl3_read_bytes):")
    enriched = detector.enriched["ssl3_read_bytes"]
    for pair in enriched.def_pairs:
        rendered = pretty(pair.dest)
        if "arg0" in rendered:
            print("  %s = %s" % (rendered, pretty(pair.value)))
    print("taint objects: %s"
          % [pretty(t) for t in enriched.taint_objects])

    print()
    print(report.render())

    hits = [f for f in report.findings if f.sink_name == "memcpy"]
    assert len(hits) == 1, "Heartbleed must be the only memcpy finding"
    print("\nOK: Heartbleed found; the patched handler "
          "(tls1_process_heartbeat_fixed) stayed clean.")


if __name__ == "__main__":
    main()
