#!/usr/bin/env python
"""Quickstart: detect a command injection in a tiny ARM binary.

Builds a firmware-style CGI handler (assembled to genuine ARM machine
code in a genuine ELF), runs the DTaint pipeline over it, and prints
the findings.  Two handlers are planted: one pipes an attacker-
controlled environment variable straight into ``system()``; the other
scans it for ';' first — only the first must be reported.

Run:  python examples/quickstart.py
"""

from repro.core import DTaint
from repro.loader.binary import load_elf
from repro.loader.link import build_executable

HANDLERS = r"""
.globl handle_ping
handle_ping:                  @ system(getenv("PING_TARGET"))  -- vulnerable
    push {r4, lr}
    ldr r0, =env_name
    bl getenv
    bl system
    pop {r4, pc}
.ltorg

.globl handle_ping_safe
handle_ping_safe:             @ same flow, but scans for ';' first
    push {r4, r5, lr}
    ldr r0, =env_name
    bl getenv
    mov r4, r0
    mov r5, r4
scan:
    ldrb r3, [r5]
    cmp r3, #0
    beq run
    cmp r3, #0x3b             @ ';'
    beq refuse
    add r5, r5, #1
    b scan
run:
    mov r0, r4
    bl system
refuse:
    mov r0, #0
    pop {r4, r5, pc}
.ltorg

.rodata
env_name: .asciz "PING_TARGET"
"""


def main():
    print("assembling the target (ARM32, ELF)...")
    elf_bytes, _program = build_executable(
        "arm", HANDLERS, imports=["getenv", "system"], entry="handle_ping"
    )
    print("  %d bytes of ELF" % len(elf_bytes))

    binary = load_elf(elf_bytes)
    print("loaded: %d local functions, %d imports"
          % (len(binary.local_functions), len(binary.imports)))

    detector = DTaint(binary, name="quickstart")
    report = detector.run()
    print()
    print(report.render())

    assert len(report.vulnerabilities) == 1, "expected exactly one finding"
    finding = report.vulnerabilities[0]
    assert finding.kind == "command-injection"
    print("\nOK: the unsanitized handler was flagged; "
          "the ';'-checked one was not.")


if __name__ == "__main__":
    main()
