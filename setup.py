"""Legacy setup shim.

The evaluation environment has no ``wheel`` package, so PEP 660
editable installs cannot build; with this shim ``pip install -e .``
falls back to ``setup.py develop``, which needs none.
"""

from setuptools import setup

setup()
